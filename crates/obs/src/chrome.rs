//! Chrome `trace_event` JSON export of a [`Trace`].
//!
//! The output is the stable subset of the Trace Event Format that
//! `chrome://tracing` and Perfetto load directly: one process, one
//! thread (`tid`) per lane, named via `thread_name` metadata events;
//! spans as complete (`"ph":"X"`) events with µs timestamps; lifecycle
//! markers as thread-scoped instants (`"ph":"i"`). Field set and order
//! are fixed — the schema snapshot test freezes them so external tooling
//! doesn't silently break.
//!
//! No JSON library exists in the container, so the writer is hand-rolled
//! (the format needs only numbers and escaped strings) and [`validate`]
//! is a minimal recursive-descent JSON parser used by the snapshot suite
//! to guarantee the writer never emits malformed output.

use crate::span::{Phase, Trace};
use std::fmt::Write as _;

/// Keys every exported span event carries, in emission order — the
/// schema contract frozen by the snapshot test.
pub const SPAN_FIELDS: [&str; 8] = ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"];

/// Keys every exported instant event carries, in emission order.
pub const INSTANT_FIELDS: [&str; 7] = ["name", "cat", "ph", "ts", "s", "pid", "tid"];

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Display name of a span: kernel shorthand plus panel, e.g. `GEQRT k2`.
fn span_name(s: &crate::span::Span) -> String {
    format!(
        "{} k{}",
        crate::span::KIND_NAMES[crate::span::kind_index(s.kind)].to_uppercase(),
        s.kind.panel()
    )
}

/// Export `trace` as a Chrome trace JSON object (`{"traceEvents":[…]}`).
///
/// Events are ordered: lane-name metadata first, then all spans and
/// instants sorted by timestamp (ties broken by lane), so the `ts`
/// stream is monotone — asserted by the snapshot suite.
pub fn export(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (tid, name) in trace.lanes.iter().enumerate() {
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
                escape(name)
            ),
            &mut out,
        );
    }

    // Interleave spans and instants by timestamp.
    enum Item<'a> {
        Span(&'a crate::span::Span),
        Event(&'a crate::span::TraceEvent),
    }
    let mut items: Vec<(f64, usize, Item)> = trace
        .spans
        .iter()
        .map(|s| (s.start_us, s.lane, Item::Span(s)))
        .chain(
            trace
                .events
                .iter()
                .map(|e| (e.at_us, e.lane, Item::Event(e))),
        )
        .collect();
    items.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    for (_, _, item) in &items {
        match item {
            Item::Span(s) => push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":0,\"tid\":{},\"args\":{{\"task\":{},\"attempt\":{}}}}}",
                    escape(&span_name(s)),
                    s.phase.name(),
                    s.start_us,
                    s.duration_us(),
                    s.lane,
                    s.task,
                    s.attempt
                ),
                &mut out,
            ),
            Item::Event(e) => push(
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"lifecycle\",\"ph\":\"i\",\"ts\":{:.3},\"s\":\"t\",\"pid\":0,\"tid\":{}{}}}",
                    e.kind.name(),
                    e.at_us,
                    e.lane,
                    match e.task {
                        Some(t) => format!(",\"args\":{{\"task\":{t},\"aux\":{}}}", e.aux),
                        None => format!(",\"args\":{{\"aux\":{}}}", e.aux),
                    }
                ),
                &mut out,
            ),
        }
    }
    out.push_str("\n]}");
    out
}

/// Export only the `Compute` spans — the lane-per-device view matching
/// the simulator's Gantt output, useful for diffing sim vs real.
pub fn export_compute_only(trace: &Trace) -> String {
    let compute = Trace {
        spans: trace
            .spans
            .iter()
            .copied()
            .filter(|s| s.phase == Phase::Compute)
            .collect(),
        events: Vec::new(),
        lanes: trace.lanes.clone(),
        dropped: trace.dropped,
        hot_path_reallocations: trace.hot_path_reallocations,
    };
    export(&compute)
}

// ---------------------------------------------------------------------
// Minimal JSON validator (recursive descent, no allocation of a DOM).
// ---------------------------------------------------------------------

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.s.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 256 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        };
        self.depth -= 1;
        r
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => match self.peek() {
                    Some(b'"') | Some(b'\\') | Some(b'/') | Some(b'b') | Some(b'f')
                    | Some(b'n') | Some(b'r') | Some(b't') => self.i += 1,
                    Some(b'u') => {
                        self.i += 1;
                        for _ in 0..4 {
                            match self.peek() {
                                Some(h) if h.is_ascii_hexdigit() => self.i += 1,
                                _ => return Err(self.err("bad \\u escape")),
                            }
                        }
                    }
                    _ => return Err(self.err("bad escape")),
                },
                c if c < 0x20 => return Err(self.err("raw control char in string")),
                _ => {}
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(self.err("number needs digits"));
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.err("fraction needs digits"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.err("exponent needs digits"));
            }
        }
        Ok(())
    }
}

/// Validate that `s` is one well-formed JSON document.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
        depth: 0,
    };
    p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(())
}

/// Extract every `"ts":<number>` value in emission order — the snapshot
/// suite's monotonicity probe.
pub fn extract_timestamps(s: &str) -> Vec<f64> {
    let mut out = Vec::new();
    let needle = "\"ts\":";
    let mut rest = s;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
            .unwrap_or(rest.len());
        if let Ok(v) = rest[..end].parse::<f64>() {
            out.push(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{EventKind, Span, TraceEvent};
    use tileqr_dag::TaskKind;

    fn sample_trace() -> Trace {
        Trace {
            spans: vec![
                Span {
                    task: 0,
                    kind: TaskKind::Geqrt { i: 0, k: 0 },
                    lane: 0,
                    phase: Phase::Compute,
                    attempt: 0,
                    start_us: 1.25,
                    end_us: 7.5,
                },
                Span {
                    task: 1,
                    kind: TaskKind::Tsqrt { p: 0, i: 1, k: 0 },
                    lane: 1,
                    phase: Phase::Stage,
                    attempt: 1,
                    start_us: 8.0,
                    end_us: 9.0,
                },
            ],
            events: vec![TraceEvent {
                kind: EventKind::Dispatch,
                task: Some(0),
                lane: 2,
                at_us: 0.5,
                aux: 0,
            }],
            lanes: vec!["worker0".into(), "worker1".into(), "manager".into()],
            dropped: 0,
            hot_path_reallocations: 0,
        }
    }

    #[test]
    fn export_is_valid_json_with_monotone_ts() {
        let json = export(&sample_trace());
        validate(&json).unwrap();
        let ts = extract_timestamps(&json);
        assert_eq!(ts.len(), 3, "one ts per span/instant");
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }

    #[test]
    fn export_carries_schema_fields() {
        let json = export(&sample_trace());
        for f in SPAN_FIELDS {
            assert!(json.contains(&format!("\"{f}\":")), "missing field {f}");
        }
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"GEQRT k0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate("{\"a\":[1,2.5,-3e2],\"b\":\"x\\n\",\"c\":null}").unwrap();
        assert!(validate("{\"a\":}").is_err());
        assert!(validate("[1,2").is_err());
        assert!(validate("\"unterminated").is_err());
        assert!(validate("{} trailing").is_err());
        assert!(validate("01abc").is_err());
    }

    #[test]
    fn compute_only_strips_other_phases() {
        let json = export_compute_only(&sample_trace());
        validate(&json).unwrap();
        assert!(!json.contains("\"cat\":\"stage\""));
        assert!(json.contains("\"cat\":\"compute\""));
    }
}
