//! Log-bucketed latency histograms over recorded spans.
//!
//! Buckets are powers of two over nanoseconds: bucket `i` holds
//! durations in `[2^i, 2^(i+1))` ns (bucket 0 additionally holds 0).
//! That gives ~±50% resolution over 19 decades with a fixed 64-word
//! footprint, exact count conservation, and a merge that is plain
//! element-wise addition — the three properties the histogram property
//! suite locks down. Exact minimum and maximum are tracked alongside so
//! quantile estimates never leave the observed range.

use crate::span::{kind_index, Phase, Trace, KIND_NAMES, NUM_KINDS};

/// Number of log2 buckets (covers the full u64 nanosecond range).
pub const NUM_BUCKETS: usize = 64;

/// One log2-bucketed latency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; NUM_BUCKETS],
    total: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; NUM_BUCKETS],
            total: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

/// Bucket index of a duration: `floor(log2(ns))`, with 0 ns in bucket 0.
pub fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Inclusive-exclusive `[lo, hi)` nanosecond bounds of bucket `i`
/// (bucket 63's upper bound saturates at `u64::MAX`).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS);
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 { u64::MAX } else { 1u64 << (i + 1) };
    (lo, hi)
}

impl LatencyHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration in nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.total += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Record one duration in microseconds (negative values clamp to 0).
    pub fn record_us(&mut self, us: f64) {
        self.record_ns((us.max(0.0) * 1e3).round() as u64);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw bucket counts.
    pub fn bucket_counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Smallest recorded duration, µs (`None` when empty).
    pub fn min_us(&self) -> Option<f64> {
        (self.total > 0).then(|| self.min_ns as f64 / 1e3)
    }

    /// Largest recorded duration, µs (`None` when empty).
    pub fn max_us(&self) -> Option<f64> {
        (self.total > 0).then(|| self.max_ns as f64 / 1e3)
    }

    /// Merge another histogram into this one. Equivalent to having
    /// recorded the union of both sample streams (asserted by the
    /// property suite).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Quantile estimate in µs: the upper bound of the bucket holding the
    /// `q`-th sample (log-resolution, so within 2× of the true value),
    /// clamped to the exactly-tracked `[min, max]`. `None` when empty.
    pub fn quantile_us(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (_, hi) = bucket_bounds(i);
                let est = hi as f64 / 1e3;
                return Some(est.clamp(self.min_ns as f64 / 1e3, self.max_ns as f64 / 1e3));
            }
        }
        Some(self.max_ns as f64 / 1e3)
    }

    /// Median estimate, µs.
    pub fn p50_us(&self) -> Option<f64> {
        self.quantile_us(0.50)
    }

    /// 95th-percentile estimate, µs.
    pub fn p95_us(&self) -> Option<f64> {
        self.quantile_us(0.95)
    }

    /// 99th-percentile estimate, µs.
    pub fn p99_us(&self) -> Option<f64> {
        self.quantile_us(0.99)
    }
}

/// Per-kernel latency histograms over a run's compute spans — the
/// paper's Fig. 4 view of a live system, one distribution per
/// [`tileqr_dag::TaskKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KernelHistograms {
    per_kind: [LatencyHistogram; NUM_KINDS],
}

impl KernelHistograms {
    /// Build from every `Compute` span of `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut h = KernelHistograms::default();
        for s in trace.phase_spans(Phase::Compute) {
            h.per_kind[kind_index(s.kind)].record_us(s.duration_us());
        }
        h
    }

    /// Histogram of one kernel by [`kind_index`] slot.
    pub fn kind(&self, idx: usize) -> &LatencyHistogram {
        &self.per_kind[idx]
    }

    /// `(name, histogram)` pairs for the kinds that recorded samples.
    pub fn non_empty(&self) -> impl Iterator<Item = (&'static str, &LatencyHistogram)> {
        self.per_kind
            .iter()
            .enumerate()
            .filter(|(_, h)| h.count() > 0)
            .map(|(i, h)| (KIND_NAMES[i], h))
    }

    /// Total samples across all kinds.
    pub fn total(&self) -> u64 {
        self.per_kind.iter().map(|h| h.count()).sum()
    }

    /// Merge another set into this one, kind by kind.
    pub fn merge(&mut self, other: &KernelHistograms) {
        for (a, b) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            a.merge(b);
        }
    }

    /// One-line-per-kernel summary: `name count p50 p95 p99 max`, µs.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for (name, h) in self.non_empty() {
            out.push_str(&format!(
                "{name:>6}: n={:<6} p50={:<10.1} p95={:<10.1} p99={:<10.1} max={:.1} µs\n",
                h.count(),
                h.p50_us().unwrap_or(0.0),
                h.p95_us().unwrap_or(0.0),
                h.p99_us().unwrap_or(0.0),
                h.max_us().unwrap_or(0.0),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        for i in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo < hi);
            assert_eq!(bucket_of(lo), i, "lower bound lands in its own bucket");
        }
    }

    #[test]
    fn counts_conserved_and_quantiles_ordered() {
        let mut h = LatencyHistogram::new();
        for v in [1u64, 10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record_ns(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 7);
        let (p50, p95, p99) = (
            h.p50_us().unwrap(),
            h.p95_us().unwrap(),
            h.p99_us().unwrap(),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p99 <= h.max_us().unwrap());
        assert!(h.min_us().unwrap() <= p50);
    }

    #[test]
    fn merge_is_sample_union() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for v in [5u64, 50, 500] {
            a.record_ns(v);
            both.record_ns(v);
        }
        for v in [7u64, 70_000] {
            b.record_ns(v);
            both.record_ns(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_us(0.5), None);
        assert_eq!(h.min_us(), None);
        assert_eq!(h.max_us(), None);
    }
}
