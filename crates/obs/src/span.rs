//! The unified span model shared by the real pool and the simulator.
//!
//! Both execution engines — the host thread pool
//! (`tileqr-runtime`) and the discrete-event simulator
//! ([`tileqr_sim::engine`]) — describe a run as intervals on lanes. A
//! *lane* is one worker thread in the real pool or one device in the
//! simulator, plus the manager's own lane in fault-tolerant runs. A
//! [`Span`] is one phase of one task attempt on one lane; a
//! [`TraceEvent`] is an instantaneous lifecycle marker (ready, dispatch,
//! retry, requeue, worker death). A [`Trace`] collects both, along with
//! the lane names, and is what the Chrome exporter, the latency
//! histograms and the calibration fitter all consume.

use tileqr_dag::{TaskId, TaskKind};
use tileqr_sim::Timeline;

/// Which part of a task attempt a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Moving the task's tiles out of shared state (real pool only).
    Stage,
    /// The kernel itself. Simulator spans are always `Compute`.
    Compute,
    /// Writing results back to shared state.
    Commit,
}

impl Phase {
    /// Stable lowercase name, used as the Chrome trace category.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Stage => "stage",
            Phase::Compute => "compute",
            Phase::Commit => "commit",
        }
    }
}

/// Instantaneous lifecycle markers outside the span phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The task entered the manager's ready set.
    Ready,
    /// The manager handed the task to a worker (`aux` = worker lane).
    Dispatch,
    /// A failed attempt was parked for a backoff-delayed retry
    /// (`aux` = the attempt count so far).
    Retry,
    /// An in-flight task returned to the pending set because its worker
    /// died (`aux` = the dead worker's lane).
    Requeue,
    /// A worker was retired mid-run (`aux` = its lane; no task).
    WorkerDeath,
}

impl EventKind {
    /// Stable lowercase name, used as the Chrome trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Ready => "ready",
            EventKind::Dispatch => "dispatch",
            EventKind::Retry => "retry",
            EventKind::Requeue => "requeue",
            EventKind::WorkerDeath => "worker_death",
        }
    }
}

/// One phase of one task attempt on one lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Task id within the graph.
    pub task: TaskId,
    /// Task kind (determines the histogram bucket and display name).
    pub kind: TaskKind,
    /// Lane index into [`Trace::lanes`].
    pub lane: usize,
    /// Phase of the attempt.
    pub phase: Phase,
    /// Attempt number, 0-based (always 0 without faults).
    pub attempt: u32,
    /// Start time, µs from run start.
    pub start_us: f64,
    /// End time, µs from run start.
    pub end_us: f64,
}

impl Span {
    /// Span duration in µs.
    pub fn duration_us(&self) -> f64 {
        self.end_us - self.start_us
    }
}

/// One instantaneous lifecycle marker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Marker kind.
    pub kind: EventKind,
    /// Task the marker refers to (`None` for [`EventKind::WorkerDeath`]).
    pub task: Option<TaskId>,
    /// Lane the marker was recorded on (the manager's lane for
    /// scheduling events).
    pub lane: usize,
    /// Timestamp, µs from run start.
    pub at_us: f64,
    /// Kind-specific detail — see each [`EventKind`] variant.
    pub aux: u64,
}

/// A complete recorded run: spans + events + lane names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, sorted by start time.
    pub spans: Vec<Span>,
    /// All instantaneous events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Display name per lane (`worker0`, `manager`, `GTX580`, …).
    pub lanes: Vec<String>,
    /// Events lost to ring-buffer overwrites, summed over recorders.
    pub dropped: u64,
    /// Hot-path buffer growths observed by the recorders. Always 0 —
    /// asserted by the overhead regression suite.
    pub hot_path_reallocations: u64,
}

/// Stable histogram index of a task kind (0..[`NUM_KINDS`]).
pub fn kind_index(kind: TaskKind) -> usize {
    match kind {
        TaskKind::Geqrt { .. } => 0,
        TaskKind::Unmqr { .. } => 1,
        TaskKind::Tsqrt { .. } => 2,
        TaskKind::Tsmqr { .. } => 3,
        TaskKind::Ttqrt { .. } => 4,
        TaskKind::Ttmqr { .. } => 5,
    }
}

/// Number of distinct task kinds (see [`kind_index`]).
pub const NUM_KINDS: usize = 6;

/// Stable lowercase kernel name per [`kind_index`] slot.
pub const KIND_NAMES: [&str; NUM_KINDS] = ["geqrt", "unmqr", "tsqrt", "tsmqr", "ttqrt", "ttmqr"];

impl Trace {
    /// Convert a simulator [`Timeline`] into the unified model: every
    /// kernel becomes a `Compute` span on its device's lane.
    ///
    /// `lane_names` must have one entry per device (missing entries fall
    /// back to `devN`).
    pub fn from_timeline(tl: &Timeline, lane_names: &[String]) -> Trace {
        let num_lanes = tl
            .tasks
            .iter()
            .map(|s| s.device + 1)
            .max()
            .unwrap_or(0)
            .max(lane_names.len());
        let lanes = (0..num_lanes)
            .map(|d| {
                lane_names
                    .get(d)
                    .cloned()
                    .unwrap_or_else(|| format!("dev{d}"))
            })
            .collect();
        let mut spans: Vec<Span> = tl
            .tasks
            .iter()
            .map(|s| Span {
                task: s.task,
                kind: s.kind,
                lane: s.device,
                phase: Phase::Compute,
                attempt: 0,
                start_us: s.start_us,
                end_us: s.end_us,
            })
            .collect();
        spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.task.cmp(&b.task)));
        Trace {
            spans,
            events: Vec::new(),
            lanes,
            dropped: 0,
            hot_path_reallocations: 0,
        }
    }

    /// Spans in `phase`, in stored (start-time) order.
    pub fn phase_spans(&self, phase: Phase) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.phase == phase)
    }

    /// Number of `Compute` spans — one per executed kernel attempt.
    pub fn compute_span_count(&self) -> usize {
        self.phase_spans(Phase::Compute).count()
    }

    /// Spans on one lane, sorted by start time.
    pub fn lane_spans(&self, lane: usize) -> Vec<Span> {
        let mut v: Vec<Span> = self
            .spans
            .iter()
            .copied()
            .filter(|s| s.lane == lane)
            .collect();
        v.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        v
    }

    /// Latest span end — the recorded makespan in µs (0 when empty).
    pub fn makespan_us(&self) -> f64 {
        self.spans.iter().map(|s| s.end_us).fold(0.0, f64::max)
    }

    /// Events of one kind, in stored order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Structural validation shared by the golden-trace suites:
    ///
    /// 1. every span has `start <= end` and a known lane,
    /// 2. per `(task, attempt)`: stage ends no later than compute starts
    ///    and compute ends no later than commit starts (well-nesting),
    /// 3. spans on one lane never overlap (each worker/device slot-0 lane
    ///    is sequential; simulator traces with multi-slot devices should
    ///    skip this via `check_lane_overlap = false`).
    pub fn validate(&self, check_lane_overlap: bool) -> Result<(), String> {
        for s in &self.spans {
            if s.end_us < s.start_us {
                return Err(format!("span for task {} ends before it starts", s.task));
            }
            if s.lane >= self.lanes.len() {
                return Err(format!(
                    "span for task {} on unknown lane {}",
                    s.task, s.lane
                ));
            }
        }
        for e in &self.events {
            if e.lane >= self.lanes.len() {
                return Err(format!("event {:?} on unknown lane {}", e.kind, e.lane));
            }
        }
        // Well-nesting per (task, attempt).
        let bound = |task: TaskId, attempt: u32, phase: Phase| {
            self.spans
                .iter()
                .find(|s| s.task == task && s.attempt == attempt && s.phase == phase)
        };
        for s in self.phase_spans(Phase::Compute) {
            if let Some(stage) = bound(s.task, s.attempt, Phase::Stage) {
                if stage.end_us > s.start_us {
                    return Err(format!(
                        "task {} attempt {}: stage ends after compute starts",
                        s.task, s.attempt
                    ));
                }
            }
            if let Some(commit) = bound(s.task, s.attempt, Phase::Commit) {
                if s.end_us > commit.start_us {
                    return Err(format!(
                        "task {} attempt {}: compute ends after commit starts",
                        s.task, s.attempt
                    ));
                }
            }
        }
        if check_lane_overlap {
            for lane in 0..self.lanes.len() {
                let spans = self.lane_spans(lane);
                for w in spans.windows(2) {
                    if w[1].start_us < w[0].end_us {
                        return Err(format!(
                            "lane {lane} ({}): task {} overlaps task {}",
                            self.lanes[lane], w[0].task, w[1].task
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render a coarse text Gantt chart from the compute spans: one row
    /// per lane, `width` columns spanning `[0, makespan]`, each cell the
    /// step-class shorthand dominating that bucket (`.` = idle) — the
    /// unified-model successor of the simulator's private renderer.
    pub fn gantt(&self, width: usize) -> String {
        let makespan = self.makespan_us().max(1e-9);
        let mut out = String::new();
        for (lane, name) in self.lanes.iter().enumerate() {
            let mut row = vec!['.'; width];
            for s in self.phase_spans(Phase::Compute).filter(|s| s.lane == lane) {
                let a = ((s.start_us / makespan) * width as f64) as usize;
                let b = (((s.end_us / makespan) * width as f64).ceil() as usize).min(width);
                let ch = match s.kind.class().shorthand() {
                    "T" => 'T',
                    "E" => 'E',
                    "UT" => 'u',
                    _ => 'U',
                };
                for cell in row.iter_mut().take(b).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("{name:>12} |"));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::TaskSpan;

    fn compute(task: TaskId, lane: usize, start: f64, end: f64) -> Span {
        Span {
            task,
            kind: TaskKind::Geqrt { i: 0, k: 0 },
            lane,
            phase: Phase::Compute,
            attempt: 0,
            start_us: start,
            end_us: end,
        }
    }

    fn trace(spans: Vec<Span>, lanes: usize) -> Trace {
        Trace {
            spans,
            events: vec![],
            lanes: (0..lanes).map(|i| format!("worker{i}")).collect(),
            dropped: 0,
            hot_path_reallocations: 0,
        }
    }

    #[test]
    fn from_timeline_maps_devices_to_lanes() {
        let tl = Timeline {
            tasks: vec![
                TaskSpan {
                    task: 1,
                    kind: TaskKind::Geqrt { i: 0, k: 0 },
                    device: 2,
                    start_us: 5.0,
                    end_us: 9.0,
                },
                TaskSpan {
                    task: 0,
                    kind: TaskKind::Geqrt { i: 0, k: 0 },
                    device: 0,
                    start_us: 0.0,
                    end_us: 4.0,
                },
            ],
            transfers: vec![],
        };
        let t = Trace::from_timeline(&tl, &["GTX580".to_string()]);
        assert_eq!(t.lanes, vec!["GTX580", "dev1", "dev2"]);
        assert_eq!(t.compute_span_count(), 2);
        // Sorted by start time.
        assert_eq!(t.spans[0].task, 0);
        assert_eq!(t.spans[1].lane, 2);
        assert!((t.makespan_us() - 9.0).abs() < 1e-12);
        t.validate(true).unwrap();
    }

    #[test]
    fn validate_catches_lane_overlap() {
        let t = trace(vec![compute(0, 0, 0.0, 10.0), compute(1, 0, 5.0, 15.0)], 1);
        assert!(t.validate(true).is_err());
        assert!(t.validate(false).is_ok());
    }

    #[test]
    fn validate_catches_bad_nesting() {
        let mut stage = compute(0, 0, 4.0, 6.0);
        stage.phase = Phase::Stage;
        let t = trace(vec![stage, compute(0, 0, 5.0, 9.0)], 1);
        let err = t.validate(true).unwrap_err();
        assert!(err.contains("stage ends after compute"), "{err}");
    }

    #[test]
    fn gantt_one_row_per_lane() {
        let t = trace(
            vec![compute(0, 0, 0.0, 50.0), compute(1, 1, 50.0, 100.0)],
            2,
        );
        let g = t.gantt(20);
        assert_eq!(g.lines().count(), 2);
        assert!(g.contains("worker0"));
        assert!(g.contains('T'));
    }

    #[test]
    fn kind_indices_are_distinct_and_named() {
        let kinds = [
            TaskKind::Geqrt { i: 0, k: 0 },
            TaskKind::Unmqr { i: 0, j: 1, k: 0 },
            TaskKind::Tsqrt { p: 0, i: 1, k: 0 },
            TaskKind::Tsmqr {
                p: 0,
                i: 1,
                j: 1,
                k: 0,
            },
            TaskKind::Ttqrt { p: 0, i: 1, k: 0 },
            TaskKind::Ttmqr {
                p: 0,
                i: 1,
                j: 1,
                k: 0,
            },
        ];
        let mut seen = [false; NUM_KINDS];
        for k in kinds {
            let idx = kind_index(k);
            assert!(!seen[idx]);
            seen[idx] = true;
            assert!(!KIND_NAMES[idx].is_empty());
        }
        assert!(seen.iter().all(|&s| s));
    }
}
