//! Memory-discipline counters for the zero-allocation hot path.
//!
//! The kernel executor promises two things in steady state: written tiles
//! move (never copy) through the stage/compute/commit cycle, and kernel
//! scratch comes from a pre-sized per-worker [`Workspace`] arena that
//! never grows. [`HotPathCounters`] is the observable form of that
//! promise — the runtime fills one in per run and the benches/tests
//! assert the zero columns stay zero.
//!
//! [`Workspace`]: https://docs.rs/tileqr-kernels

/// Counters surfaced by a factorization run that certify (or refute) the
/// zero-allocation discipline of the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HotPathCounters {
    /// Copy-on-write fallback clones: full `O(b²)` tile copies taken
    /// because an `Arc` that should have been uniquely owned was still
    /// shared when a writer staged it. 0 for single-owner execution.
    pub cow_clones: u64,
    /// Total bytes held by all workspace arenas at the end of the run
    /// (capacity, not momentary use).
    pub workspace_bytes: usize,
    /// Number of times any workspace arena had to grow after its initial
    /// sizing. 0 in steady state; every growth is a heap allocation that
    /// happened inside a kernel.
    pub workspace_resizes: u64,
}

impl HotPathCounters {
    /// Fold another set of counters (e.g. from another worker) into this
    /// one. Counts add; byte totals add (each worker owns its arena).
    pub fn merge(&mut self, other: &HotPathCounters) {
        self.cow_clones += other.cow_clones;
        self.workspace_bytes += other.workspace_bytes;
        self.workspace_resizes += other.workspace_resizes;
    }

    /// True when the run stayed on the zero-allocation fast path: no COW
    /// clones and no arena growth.
    pub fn is_clean(&self) -> bool {
        self.cow_clones == 0 && self.workspace_resizes == 0
    }
}

/// Job-lifecycle counters of a resident service: how many jobs left the
/// normal `queued → dispatched → done` path, and why. Each field maps to
/// one structured failure mode a `QrService` can assign a job
/// (`DeadlineExceeded`, `Cancelled`, `NumericalBreakdown`) plus the
/// watchdog's worker retirements — together they make the containment
/// story observable: a chaos storm can assert *exactly* how many jobs
/// were shed, cancelled, or poisoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleCounters {
    /// Jobs shed before consuming worker time because their deadline had
    /// already expired (at admission or while queued).
    pub jobs_shed: u64,
    /// Jobs that resolved as cancelled (cooperative drain completed
    /// before the DAG did).
    pub jobs_cancelled: u64,
    /// Non-finite panel factors caught at the commit fence; each one
    /// failed exactly its victim job instead of propagating NaN.
    pub poison_detected: u64,
    /// Workers retired by the stall watchdog (their in-flight task was
    /// requeued exactly-once through the retry path).
    pub watchdog_retirements: u64,
}

impl LifecycleCounters {
    /// Fold another set of lifecycle counters into this one.
    pub fn merge(&mut self, other: &LifecycleCounters) {
        self.jobs_shed += other.jobs_shed;
        self.jobs_cancelled += other.jobs_cancelled;
        self.poison_detected += other.poison_detected;
        self.watchdog_retirements += other.watchdog_retirements;
    }

    /// True when no job left the normal lifecycle path.
    pub fn is_quiet(&self) -> bool {
        *self == LifecycleCounters::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_clean() {
        assert!(HotPathCounters::default().is_clean());
    }

    #[test]
    fn lifecycle_merge_adds_and_quiet_detects() {
        let mut a = LifecycleCounters {
            jobs_shed: 1,
            ..Default::default()
        };
        let b = LifecycleCounters {
            jobs_cancelled: 2,
            poison_detected: 3,
            watchdog_retirements: 4,
            ..Default::default()
        };
        assert!(LifecycleCounters::default().is_quiet());
        assert!(!a.is_quiet());
        a.merge(&b);
        assert_eq!(
            a,
            LifecycleCounters {
                jobs_shed: 1,
                jobs_cancelled: 2,
                poison_detected: 3,
                watchdog_retirements: 4,
            }
        );
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = HotPathCounters {
            cow_clones: 1,
            workspace_bytes: 100,
            workspace_resizes: 0,
        };
        let b = HotPathCounters {
            cow_clones: 2,
            workspace_bytes: 50,
            workspace_resizes: 3,
        };
        a.merge(&b);
        assert_eq!(a.cow_clones, 3);
        assert_eq!(a.workspace_bytes, 150);
        assert_eq!(a.workspace_resizes, 3);
        assert!(!a.is_clean());
    }

    #[test]
    fn clean_requires_both_zero_counts() {
        let cow = HotPathCounters {
            cow_clones: 1,
            ..Default::default()
        };
        let grow = HotPathCounters {
            workspace_resizes: 1,
            ..Default::default()
        };
        assert!(!cow.is_clean());
        assert!(!grow.is_clean());
        // Bytes alone don't dirty a run: a sized arena is the point.
        let sized = HotPathCounters {
            workspace_bytes: 4096,
            ..Default::default()
        };
        assert!(sized.is_clean());
    }
}
