//! Fit simulator timing constants from measured spans and score the
//! simulator against reality.
//!
//! The paper's Algorithms 2–4 are driven entirely by the per-kernel
//! timing curves of its Fig. 4 (`t(b) = c0 + c1·b² + c2·b³`). The
//! simulator carries those curves as [`StepTimes`]; this module closes
//! the loop in the other direction: given compute spans recorded from
//! *any* source — the real thread pool or the simulator itself — it
//! least-squares-fits the three coefficients per kernel class and
//! reports how far the fitted model's predictions sit from a reference
//! profile ([`profile_error`]) or from a recorded run's makespan
//! ([`sim_vs_real`]). Feeding the fitted [`DeviceProfile`] back into the
//! Alg. 2/3 planners turns them from paper-constant-driven into
//! measurement-driven.

use crate::span::{Phase, Trace};
use tileqr_dag::{ClassCosts, CostCurve, CostModel, TaskGraph};
use tileqr_sim::{
    engine, DeviceKind, DeviceProfile, KernelClass, KernelTiming, Link, Platform, SimConfig,
    StepTimes,
};

/// One measured kernel execution: class, tile size it ran at, duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSample {
    /// Timing curve the kernel belongs to.
    pub class: KernelClass,
    /// Tile size `b` of the run that produced the sample.
    pub tile_size: usize,
    /// Measured duration, µs.
    pub duration_us: f64,
}

/// Extract one [`KernelSample`] per compute span of `trace`, all at the
/// run's tile size.
pub fn samples_from_trace(trace: &Trace, tile_size: usize) -> Vec<KernelSample> {
    trace
        .phase_spans(Phase::Compute)
        .map(|s| KernelSample {
            class: KernelClass::of(s.kind),
            tile_size,
            duration_us: s.duration_us(),
        })
        .collect()
}

/// Solve the 3×3 system `m x = y` by Gaussian elimination with partial
/// pivoting. `None` when singular (fewer than 3 distinct tile sizes).
fn solve3(mut m: [[f64; 3]; 3], mut y: [f64; 3]) -> Option<[f64; 3]> {
    for col in 0..3 {
        let pivot = (col..3).max_by(|&a, &b| m[a][col].abs().total_cmp(&m[b][col].abs()))?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        y.swap(col, pivot);
        let pivot_row = m[col];
        for row in col + 1..3 {
            let f = m[row][col] / pivot_row[col];
            for (v, p) in m[row].iter_mut().zip(pivot_row.iter()).skip(col) {
                *v -= f * p;
            }
            y[row] -= f * y[col];
        }
    }
    let mut x = [0.0; 3];
    for col in (0..3).rev() {
        let mut v = y[col];
        for k in col + 1..3 {
            v -= m[col][k] * x[k];
        }
        x[col] = v / m[col][col];
    }
    Some(x)
}

/// Least-squares fit of one timing curve `t(b) = c0 + c1·b² + c2·b³`
/// over `(b, duration)` points. Needs ≥ 3 distinct tile sizes; negative
/// coefficients (possible under measurement noise) clamp to 0.
fn fit_curve(points: &[(usize, f64)]) -> Option<KernelTiming> {
    let mut distinct: Vec<usize> = points.iter().map(|p| p.0).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() < 3 {
        return None;
    }
    // Normal equations over the basis [1, b², b³].
    let mut m = [[0.0f64; 3]; 3];
    let mut y = [0.0f64; 3];
    for &(b, t) in points {
        let b = b as f64;
        let phi = [1.0, b * b, b * b * b];
        for i in 0..3 {
            for j in 0..3 {
                m[i][j] += phi[i] * phi[j];
            }
            y[i] += phi[i] * t;
        }
    }
    let c = solve3(m, y)?;
    Some(KernelTiming {
        c0: c[0].max(0.0),
        c1: c[1].max(0.0),
        c2: c[2].max(0.0),
    })
}

/// Fit a full [`StepTimes`] table from samples spanning ≥ 3 tile sizes
/// per class. `None` if any class lacks the data.
pub fn fit_step_times(samples: &[KernelSample]) -> Option<StepTimes> {
    let of = |class: KernelClass| {
        let pts: Vec<(usize, f64)> = samples
            .iter()
            .filter(|s| s.class == class)
            .map(|s| (s.tile_size, s.duration_us))
            .collect();
        fit_curve(&pts)
    };
    Some(StepTimes {
        triangulation: of(KernelClass::Triangulation)?,
        elimination: of(KernelClass::Elimination)?,
        update: of(KernelClass::Update)?,
    })
}

/// Wrap fitted curves in a [`DeviceProfile`] usable by the Alg. 2/3/4
/// planners and the simulator (`cores` = the worker count or device
/// parallelism the samples came from).
pub fn fitted_profile(
    name: &str,
    kind: DeviceKind,
    cores: usize,
    times: StepTimes,
) -> DeviceProfile {
    DeviceProfile {
        name: name.to_string(),
        kind,
        cores: cores.max(1),
        times,
    }
}

/// Bridge a simulator [`StepTimes`] table into the scheduler's
/// dependency-free [`ClassCosts`] (same curves, different crate).
pub fn class_costs(times: &StepTimes) -> ClassCosts {
    let curve = |t: KernelTiming| CostCurve {
        c0: t.c0,
        c1: t.c1,
        c2: t.c2,
    };
    ClassCosts {
        triangulation: curve(times.triangulation),
        elimination: curve(times.elimination),
        update: curve(times.update),
    }
}

/// Inverse of [`class_costs`]: scheduler curves back into simulator form
/// (used when a drift-scaled model is fed to the planners).
pub fn step_times_of(costs: &ClassCosts) -> StepTimes {
    let curve = |c: CostCurve| KernelTiming {
        c0: c.c0,
        c1: c.c1,
        c2: c.c2,
    };
    StepTimes {
        triangulation: curve(costs.triangulation),
        elimination: curve(costs.elimination),
        update: curve(costs.update),
    }
}

/// The [`CostModel`] a calibrated profile induces: measured-microsecond
/// weights for `SchedulePolicy::CriticalPath`.
pub fn cost_model(profile: &DeviceProfile) -> CostModel {
    CostModel::Calibrated(class_costs(&profile.times))
}

/// Maximum relative error of `fitted` vs `truth`, per kernel class, over
/// the tile sizes in `bs`: `[triangulation, elimination, update]`.
pub fn profile_error(fitted: &StepTimes, truth: &StepTimes, bs: &[usize]) -> [f64; 3] {
    let classes = [
        KernelClass::Triangulation,
        KernelClass::Elimination,
        KernelClass::Update,
    ];
    let mut out = [0.0f64; 3];
    for (slot, &class) in out.iter_mut().zip(classes.iter()) {
        for &b in bs {
            let t = truth.time_us(class, b);
            let f = fitted.time_us(class, b);
            if t > 0.0 {
                *slot = slot.max((f - t).abs() / t);
            }
        }
    }
    out
}

/// Sim-vs-real comparison of one recorded run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimVsReal {
    /// Makespan of the recorded (real) run, µs.
    pub real_makespan_us: f64,
    /// Makespan the calibrated simulator predicts for the same graph on
    /// the same worker count, µs.
    pub sim_makespan_us: f64,
    /// Sum of real compute-span durations, µs (the serial work volume).
    pub real_compute_us: f64,
    /// Simulated critical-path (longest device-busy chain) proxy: the
    /// simulator's per-device busy maximum, µs.
    pub sim_busy_max_us: f64,
}

impl SimVsReal {
    /// Signed relative makespan error of the simulator: positive means
    /// the simulator over-predicts.
    pub fn makespan_rel_error(&self) -> f64 {
        if self.real_makespan_us <= 0.0 {
            return 0.0;
        }
        (self.sim_makespan_us - self.real_makespan_us) / self.real_makespan_us
    }
}

/// Replay `graph` through the simulator on a single calibrated device
/// with `workers`-way parallelism and compare against the recorded run.
///
/// This is the calibration loop's verdict: fit [`StepTimes`] from the
/// trace ([`fit_step_times`]), hand them here, and the report says how
/// closely the Alg. 2/3 cost model would have predicted the real pool.
pub fn sim_vs_real(
    trace: &Trace,
    graph: &TaskGraph,
    workers: usize,
    tile_size: usize,
    fitted: StepTimes,
) -> SimVsReal {
    let dev = fitted_profile("calibrated-host", DeviceKind::Cpu, workers, fitted);
    let platform = Platform::new(
        vec![dev],
        Link::pcie2_x16(),
        SimConfig {
            tile_size,
            elem_bytes: 8,
        },
    );
    let assignment = vec![0usize; graph.len()];
    let stats = engine::simulate(graph, &platform, &assignment);
    let real_compute_us: f64 = trace
        .phase_spans(Phase::Compute)
        .map(|s| s.duration_us())
        .sum();
    SimVsReal {
        real_makespan_us: trace.makespan_us(),
        sim_makespan_us: stats.makespan_us,
        real_compute_us,
        sim_busy_max_us: stats.device_busy_us.iter().copied().fold(0.0f64, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn fit_recovers_exact_curve_from_clean_points() {
        let truth = KernelTiming {
            c0: 20.0,
            c1: 0.02,
            c2: 0.019,
        };
        let pts: Vec<(usize, f64)> = [4usize, 8, 16, 24, 32]
            .iter()
            .map(|&b| (b, truth.time_us(b)))
            .collect();
        let fit = fit_curve(&pts).unwrap();
        for b in [4usize, 12, 28, 40] {
            let (t, f) = (truth.time_us(b), fit.time_us(b));
            assert!((t - f).abs() / t < 1e-9, "b={b}: {t} vs {f}");
        }
    }

    #[test]
    fn fit_needs_three_distinct_tile_sizes() {
        assert!(fit_curve(&[(8, 1.0), (8, 1.1), (16, 2.0)]).is_none());
        assert!(fit_curve(&[]).is_none());
    }

    #[test]
    fn fit_step_times_recovers_profile() {
        let truth = profiles::gtx580().times;
        let mut samples = Vec::new();
        for b in [4usize, 8, 16, 24, 32] {
            for class in [
                KernelClass::Triangulation,
                KernelClass::Elimination,
                KernelClass::Update,
            ] {
                samples.push(KernelSample {
                    class,
                    tile_size: b,
                    duration_us: truth.time_us(class, b),
                });
            }
        }
        let fitted = fit_step_times(&samples).unwrap();
        let err = profile_error(&fitted, &truth, &[4, 8, 16, 24, 32, 48]);
        assert!(err.iter().all(|&e| e < 1e-6), "{err:?}");
    }

    #[test]
    fn solve3_rejects_singular() {
        let m = [[1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [1.0, 0.0, 1.0]];
        assert!(solve3(m, [1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn class_costs_round_trips_step_times() {
        let times = profiles::gtx580().times;
        let costs = class_costs(&times);
        assert_eq!(step_times_of(&costs), times);
        for b in [8usize, 16, 32] {
            assert!(
                (costs.triangulation.eval_us(b) - times.time_us(KernelClass::Triangulation, b))
                    .abs()
                    < 1e-12
            );
            assert!(
                (costs.update.eval_us(b) - times.time_us(KernelClass::Update, b)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn cost_model_of_profile_is_calibrated() {
        let p = profiles::gtx580();
        let m = cost_model(&p);
        assert_eq!(m.name(), "calibrated");
        assert_eq!(m.class_costs(), Some(class_costs(&p.times)));
    }
}
