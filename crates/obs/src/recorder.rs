//! Low-overhead per-lane event recorders for the real pool.
//!
//! Each worker thread (and the manager) owns one [`WorkerRecorder`]: a
//! fixed-capacity ring buffer of plain-old-data [`RawEvent`]s. Recording
//! is a bounds-checked array write — no locks, no allocation, no
//! formatting — so the hot path pays a few nanoseconds per event when
//! tracing is on and exactly nothing when it is off (the pool holds
//! `Option<WorkerRecorder>` and skips the timestamp reads entirely).
//! When the buffer fills, the oldest events are overwritten and counted,
//! never reallocated; [`WorkerRecorder::hot_path_reallocations`] is the
//! counting seam the overhead regression suite asserts on.
//!
//! At pool join the recorders are merged into one [`Trace`] via
//! [`merge_recorders`], which resolves task kinds from the graph and
//! converts nanosecond offsets to the µs timescale shared with the
//! simulator.

use crate::span::{EventKind, Phase, Span, Trace, TraceEvent};
use tileqr_dag::{TaskGraph, TaskId};

/// Tracing configuration carried by the pool config.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record the run. Off by default: a disabled config makes the pool
    /// allocate nothing and read no extra clocks.
    pub enabled: bool,
    /// Ring-buffer capacity per lane, in events. Each event is a few
    /// machine words; the default holds ~64k events per lane, enough for
    /// a 100×100-tile factorization without overwrites.
    pub capacity_per_lane: usize,
}

/// Default per-lane ring capacity (events).
pub const DEFAULT_CAPACITY_PER_LANE: usize = 1 << 16;

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity_per_lane: DEFAULT_CAPACITY_PER_LANE,
        }
    }
}

impl TraceConfig {
    /// Tracing on, default capacity.
    pub fn enabled() -> Self {
        TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        }
    }

    /// Tracing on with an explicit per-lane capacity (min 1).
    pub fn with_capacity(capacity_per_lane: usize) -> Self {
        TraceConfig {
            enabled: true,
            capacity_per_lane: capacity_per_lane.max(1),
        }
    }
}

/// What one raw record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawKind {
    /// Interval: staging the task's tiles.
    Stage,
    /// Interval: the kernel.
    Compute,
    /// Interval: committing results.
    Commit,
    /// Instant: task entered the ready set.
    Ready,
    /// Instant: task handed to worker `aux`.
    Dispatch,
    /// Instant: failed attempt parked for retry (`aux` = attempts so far).
    Retry,
    /// Instant: in-flight task returned to pending (`aux` = dead lane).
    Requeue,
    /// Instant: worker `aux` retired.
    WorkerDeath,
}

/// One fixed-size record: no heap data, cheap to copy into the ring.
#[derive(Debug, Clone, Copy)]
pub struct RawEvent {
    /// Record kind.
    pub kind: RawKind,
    /// Task id (`usize::MAX` for task-less records like worker death).
    pub task: TaskId,
    /// Attempt number, 0-based.
    pub attempt: u32,
    /// Kind-specific detail (worker lane, attempt count, …).
    pub aux: u64,
    /// Interval start (or the instant), nanoseconds from run start.
    pub t0_ns: u64,
    /// Interval end; equals `t0_ns` for instants.
    pub t1_ns: u64,
}

impl RawEvent {
    /// Sentinel task id for records that refer to no task.
    pub const NO_TASK: TaskId = usize::MAX;

    /// An interval record.
    pub fn interval(kind: RawKind, task: TaskId, attempt: u32, t0_ns: u64, t1_ns: u64) -> Self {
        RawEvent {
            kind,
            task,
            attempt,
            aux: 0,
            t0_ns,
            t1_ns,
        }
    }

    /// An instant record.
    pub fn instant(kind: RawKind, task: TaskId, aux: u64, at_ns: u64) -> Self {
        RawEvent {
            kind,
            task,
            attempt: 0,
            aux,
            t0_ns: at_ns,
            t1_ns: at_ns,
        }
    }
}

/// Fixed-capacity ring buffer of [`RawEvent`]s owned by one lane.
#[derive(Debug)]
pub struct WorkerRecorder {
    buf: Vec<RawEvent>,
    cap: usize,
    /// Next overwrite position once the buffer is full.
    head: usize,
    overwritten: u64,
    initial_heap_capacity: usize,
}

impl WorkerRecorder {
    /// Pre-allocate a recorder holding `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        let buf = Vec::with_capacity(cap);
        let initial_heap_capacity = buf.capacity();
        WorkerRecorder {
            buf,
            cap,
            head: 0,
            overwritten: 0,
            initial_heap_capacity,
        }
    }

    /// Record one event: an append while the ring has room, otherwise an
    /// overwrite of the oldest event. Never allocates.
    #[inline]
    pub fn record(&mut self, ev: RawEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events lost to ring overwrites.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Number of times the underlying buffer grew past its pre-allocated
    /// capacity. The recorder never grows it, so this is 0 — the counting
    /// assertion the overhead suite locks down.
    pub fn hot_path_reallocations(&self) -> u64 {
        u64::from(self.buf.capacity() > self.initial_heap_capacity)
    }

    /// The held events in recording order (oldest first).
    pub fn events(&self) -> Vec<RawEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        if self.buf.len() == self.cap {
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
        } else {
            out.extend_from_slice(&self.buf);
        }
        out
    }
}

const NS_PER_US: f64 = 1e3;

/// Merge one recorder per lane into a unified [`Trace`], resolving task
/// kinds from `graph`. `lanes[i]` names recorder `i`'s lane.
pub fn merge_recorders(
    recorders: &[WorkerRecorder],
    lanes: Vec<String>,
    graph: &TaskGraph,
) -> Trace {
    assert_eq!(recorders.len(), lanes.len(), "one name per lane");
    let mut spans = Vec::new();
    let mut events = Vec::new();
    let mut dropped = 0;
    let mut hot_path_reallocations = 0;
    for (lane, rec) in recorders.iter().enumerate() {
        dropped += rec.overwritten();
        hot_path_reallocations += rec.hot_path_reallocations();
        for ev in rec.events() {
            let phase = match ev.kind {
                RawKind::Stage => Some(Phase::Stage),
                RawKind::Compute => Some(Phase::Compute),
                RawKind::Commit => Some(Phase::Commit),
                _ => None,
            };
            if let Some(phase) = phase {
                spans.push(Span {
                    task: ev.task,
                    kind: graph.task(ev.task),
                    lane,
                    phase,
                    attempt: ev.attempt,
                    start_us: ev.t0_ns as f64 / NS_PER_US,
                    end_us: ev.t1_ns as f64 / NS_PER_US,
                });
            } else {
                let kind = match ev.kind {
                    RawKind::Ready => EventKind::Ready,
                    RawKind::Dispatch => EventKind::Dispatch,
                    RawKind::Retry => EventKind::Retry,
                    RawKind::Requeue => EventKind::Requeue,
                    RawKind::WorkerDeath => EventKind::WorkerDeath,
                    _ => unreachable!("interval kinds handled above"),
                };
                events.push(TraceEvent {
                    kind,
                    task: (ev.task != RawEvent::NO_TASK).then_some(ev.task),
                    lane,
                    at_us: ev.t0_ns as f64 / NS_PER_US,
                    aux: ev.aux,
                });
            }
        }
    }
    spans.sort_by(|a, b| a.start_us.total_cmp(&b.start_us).then(a.task.cmp(&b.task)));
    events.sort_by(|a, b| a.at_us.total_cmp(&b.at_us).then(a.lane.cmp(&b.lane)));
    Trace {
        spans,
        events,
        lanes,
        dropped,
        hot_path_reallocations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;

    #[test]
    fn ring_overwrites_oldest_without_allocating() {
        let mut r = WorkerRecorder::new(4);
        let heap_cap = r.buf.capacity();
        for i in 0..10u64 {
            r.record(RawEvent::instant(RawKind::Ready, i as usize, 0, i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        assert_eq!(r.buf.capacity(), heap_cap);
        assert_eq!(r.hot_path_reallocations(), 0);
        // Oldest-first order after wrap: events 6..10 survive.
        let kept: Vec<u64> = r.events().iter().map(|e| e.t0_ns).collect();
        assert_eq!(kept, vec![6, 7, 8, 9]);
    }

    #[test]
    fn merge_resolves_kinds_and_sorts() {
        let g = TaskGraph::build(2, 2, EliminationOrder::FlatTs);
        let mut w0 = WorkerRecorder::new(16);
        let mut w1 = WorkerRecorder::new(16);
        w1.record(RawEvent::interval(RawKind::Compute, 1, 0, 5_000, 9_000));
        w0.record(RawEvent::interval(RawKind::Compute, 0, 0, 1_000, 4_000));
        w0.record(RawEvent::instant(RawKind::Dispatch, 0, 1, 500));
        let t = merge_recorders(
            &[w0, w1],
            vec!["worker0".to_string(), "worker1".to_string()],
            &g,
        );
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].task, 0, "sorted by start");
        assert_eq!(t.spans[0].kind, g.task(0));
        assert!((t.spans[0].start_us - 1.0).abs() < 1e-12);
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].kind, EventKind::Dispatch);
        assert_eq!(t.events[0].aux, 1);
        assert_eq!(t.dropped, 0);
        assert_eq!(t.hot_path_reallocations, 0);
    }

    #[test]
    fn config_defaults_disabled() {
        let c = TraceConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.capacity_per_lane, DEFAULT_CAPACITY_PER_LANE);
        assert!(TraceConfig::enabled().enabled);
        assert_eq!(TraceConfig::with_capacity(0).capacity_per_lane, 1);
    }
}
