//! Hand-rolled JSON save/load for calibrated [`DeviceProfile`]s.
//!
//! Calibration probes cost real jobs, so the service wants to warm-start
//! from the fits of a previous process. The container has no serde; this
//! module writes and parses a small, fixed-schema JSON document with a
//! ~100-line recursive-descent parser (objects, arrays, strings with
//! basic escapes, numbers, booleans, null — everything the schema needs
//! and nothing more).
//!
//! Schema (`ProfileStore`):
//!
//! ```json
//! { "profiles": [ { "key": "256x128",
//!                   "name": "tuned-256x128", "kind": "cpu", "cores": 4,
//!                   "times": { "triangulation": {"c0": 2.0, "c1": 0.0, "c2": 0.004},
//!                              "elimination":   {"c0": 2.0, "c1": 0.0, "c2": 0.004},
//!                              "update":        {"c0": 2.0, "c1": 0.0, "c2": 0.006} } } ] }
//! ```
//!
//! The conventional location is the path in the `TILEQR_PROFILE`
//! environment variable ([`default_profile_path`]); the service-level
//! tuner loads it at start and saves after each new fit.

use std::path::{Path, PathBuf};
use tileqr_sim::{DeviceKind, DeviceProfile, KernelTiming, StepTimes};

/// Environment variable naming the profile-store path the service-level
/// tuner warm-starts from.
pub const PROFILE_ENV: &str = "TILEQR_PROFILE";

/// The profile-store path from [`PROFILE_ENV`], when set and non-empty.
pub fn default_profile_path() -> Option<PathBuf> {
    match std::env::var(PROFILE_ENV) {
        Ok(p) if !p.is_empty() => Some(PathBuf::from(p)),
        _ => None,
    }
}

/// A keyed collection of calibrated profiles (the service keys by shape
/// class, e.g. `"256x128"`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileStore {
    /// `(key, profile)` pairs in insertion order.
    pub entries: Vec<(String, DeviceProfile)>,
}

impl ProfileStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Profile stored under `key`.
    pub fn get(&self, key: &str) -> Option<&DeviceProfile> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, p)| p)
    }

    /// Insert or replace the profile under `key`.
    pub fn insert(&mut self, key: &str, profile: DeviceProfile) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = profile;
        } else {
            self.entries.push((key.to_string(), profile));
        }
    }

    /// Serialize to the schema above.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"profiles\": [");
        for (i, (key, p)) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"key\": ");
            push_json_string(&mut s, key);
            s.push_str(", \"name\": ");
            push_json_string(&mut s, &p.name);
            s.push_str(&format!(
                ", \"kind\": \"{}\", \"cores\": {}, \"times\": {{",
                match p.kind {
                    DeviceKind::Cpu => "cpu",
                    DeviceKind::Gpu => "gpu",
                },
                p.cores
            ));
            for (j, (label, t)) in [
                ("triangulation", p.times.triangulation),
                ("elimination", p.times.elimination),
                ("update", p.times.update),
            ]
            .iter()
            .enumerate()
            {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!(
                    "\"{label}\": {{\"c0\": {:?}, \"c1\": {:?}, \"c2\": {:?}}}",
                    t.c0, t.c1, t.c2
                ));
            }
            s.push_str("}}");
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Parse a store from JSON produced by [`ProfileStore::to_json`] (or
    /// hand-edited to the same schema).
    pub fn from_json(text: &str) -> Result<ProfileStore, String> {
        let root = parse_json(text)?;
        let profiles = root
            .field("profiles")
            .ok_or("missing \"profiles\" array")?
            .as_array()
            .ok_or("\"profiles\" is not an array")?;
        let mut store = ProfileStore::new();
        for entry in profiles {
            let key = entry
                .field("key")
                .and_then(Json::as_str)
                .ok_or("profile entry missing string \"key\"")?;
            store
                .entries
                .push((key.to_string(), profile_from_value(entry)?));
        }
        Ok(store)
    }

    /// Write the store to `path`.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Read and parse the store at `path` (I/O and parse errors both
    /// surface as the error string).
    pub fn load(path: &Path) -> Result<ProfileStore, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
        Self::from_json(&text)
    }
}

/// Serialize one profile (no key) — the single-profile convenience used
/// by tests and ad-hoc tooling.
pub fn profile_to_json(p: &DeviceProfile) -> String {
    let mut store = ProfileStore::new();
    store.insert("default", p.clone());
    store.to_json()
}

/// Parse the first profile of a store document.
pub fn profile_from_json(text: &str) -> Result<DeviceProfile, String> {
    let store = ProfileStore::from_json(text)?;
    store
        .entries
        .into_iter()
        .next()
        .map(|(_, p)| p)
        .ok_or_else(|| "empty profile store".to_string())
}

fn profile_from_value(v: &Json) -> Result<DeviceProfile, String> {
    let name = v
        .field("name")
        .and_then(Json::as_str)
        .ok_or("profile missing string \"name\"")?;
    let kind = match v.field("kind").and_then(Json::as_str) {
        Some("cpu") => DeviceKind::Cpu,
        Some("gpu") => DeviceKind::Gpu,
        other => return Err(format!("bad device kind {other:?}")),
    };
    let cores = v
        .field("cores")
        .and_then(Json::as_f64)
        .filter(|c| *c >= 1.0 && c.fract() == 0.0)
        .ok_or("profile missing positive integer \"cores\"")? as usize;
    let times = v.field("times").ok_or("profile missing \"times\"")?;
    let curve = |label: &str| -> Result<KernelTiming, String> {
        let t = times
            .field(label)
            .ok_or_else(|| format!("times missing \"{label}\""))?;
        let coeff = |c: &str| {
            t.field(c)
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v >= 0.0)
                .ok_or_else(|| format!("curve \"{label}\" missing finite non-negative \"{c}\""))
        };
        Ok(KernelTiming {
            c0: coeff("c0")?,
            c1: coeff("c1")?,
            c2: coeff("c2")?,
        })
    };
    Ok(DeviceProfile {
        name: name.to_string(),
        kind,
        cores,
        times: StepTimes {
            triangulation: curve("triangulation")?,
            elimination: curve("elimination")?,
            update: curve("update")?,
        },
    })
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// minimal JSON value + recursive-descent parser
// ---------------------------------------------------------------------------

enum Json {
    Null,
    Bool,
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn field(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid utf-8")?;
                let ch = s.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        fields.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    fn sample() -> DeviceProfile {
        profiles::gtx580()
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let mut store = ProfileStore::new();
        store.insert("256x128", sample());
        store.insert("64x64", sample().slowed(2.0));
        let parsed = ProfileStore::from_json(&store.to_json()).unwrap();
        assert_eq!(parsed, store);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut store = ProfileStore::new();
        store.insert("a", sample());
        store.insert("a", sample().slowed(3.0));
        assert_eq!(store.entries.len(), 1);
        assert_eq!(store.get("a").unwrap().times, sample().slowed(3.0).times);
    }

    #[test]
    fn single_profile_helpers() {
        let p = sample();
        let parsed = profile_from_json(&profile_to_json(&p)).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn string_escapes_survive() {
        let mut p = sample();
        p.name = "weird \"name\"\\with\nescapes\tand µnicode".to_string();
        let parsed = profile_from_json(&profile_to_json(&p)).unwrap();
        assert_eq!(parsed.name, p.name);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let mut store = ProfileStore::new();
        store.insert("128x128", sample());
        let path =
            std::env::temp_dir().join(format!("tileqr-profile-test-{}.json", std::process::id()));
        store.save(&path).unwrap();
        let loaded = ProfileStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, store);
    }

    #[test]
    fn malformed_documents_error_not_panic() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"profiles\": 3}",
            "{\"profiles\": [{\"key\": \"a\"}]}",
            "{\"profiles\": [{\"key\": \"a\", \"name\": \"x\", \"kind\": \"tpu\", \"cores\": 1, \"times\": {}}]}",
            "{\"profiles\": []} trailing",
            "{\"profiles\": [{\"key\": \"a\", \"name\": \"x\", \"kind\": \"cpu\", \"cores\": 1, \"times\": {\"triangulation\": {\"c0\": -1, \"c1\": 0, \"c2\": 0}, \"elimination\": {\"c0\": 0, \"c1\": 0, \"c2\": 0}, \"update\": {\"c0\": 0, \"c1\": 0, \"c2\": 0}}}]}",
        ] {
            assert!(ProfileStore::from_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn missing_env_var_yields_no_default_path() {
        // PROFILE_ENV is not set in the test environment.
        if std::env::var(PROFILE_ENV).is_err() {
            assert_eq!(default_profile_path(), None);
        }
    }
}
