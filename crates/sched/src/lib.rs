//! The paper's heterogeneous scheduling optimizations.
//!
//! This crate is the primary contribution of the reproduced paper (§IV):
//! given a [`tileqr_sim::Platform`] describing a CPU + multi-GPU node and a
//! tile grid, it decides
//!
//! 1. **which device is the main computing device** (Algorithm 2,
//!    [`main_select`]) — the device that runs all triangulation and
//!    elimination kernels,
//! 2. **how many devices participate** (Algorithm 3, [`device_count`]) —
//!    minimizing the predicted `T(p) = Top(p) + Tcomm(p)` of Eqs. 10–11,
//! 3. **which tile columns go to which device** (Algorithm 4,
//!    [`guide`] / [`distribution`]) — a cyclic *distribution guide array*
//!    built from integer ratios of per-device update throughput, applied
//!    column-wise via Eq. 12.
//!
//! [`plan::plan`] chains the three steps into a [`plan::HeteroPlan`];
//! [`assign::assign_tasks`] lowers a plan onto a concrete
//! [`tileqr_dag::TaskGraph`] for the exact discrete-event simulator; and
//! [`fastsim`] is a column-granularity pipelined simulator (validated
//! against the exact one) that scales to the paper's largest matrices
//! (16 000 × 16 000 at tile size 16 — a third of a billion tasks, far past
//! what task-level simulation can hold in memory).
//!
//! Baseline strategies the paper compares against — even distribution,
//! cores-proportional distribution, "no main device", CPU-as-main — are
//! all expressible through the same types, so every figure's comparison is
//! a one-liner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod autotune;
pub mod device_count;
pub mod distribution;
pub mod fastsim;
pub mod guide;
pub mod main_select;
pub mod plan;
pub mod ratio;
pub mod replan;
pub mod rowblock;
pub mod select;

pub use distribution::{Distribution, DistributionStrategy};
pub use plan::{HeteroPlan, MainDevicePolicy};
pub use replan::{simulate_adaptive, AdaptiveRun, ReplanEvent, ReplanPolicy};
pub use select::{choose_tree, select_plan, select_tree, Selection, TreeScore};
