//! End-to-end planning: Algorithm 2 → Algorithm 3 → Algorithm 4.

use crate::device_count::{
    ordered_devices_excluding, select_device_count_excluding, CountSelection,
};
use crate::distribution::{Distribution, DistributionStrategy};
use crate::main_select::{select_main_device_excluding, MainSelection};
use tileqr_sim::{DeviceId, Platform};

/// How the main computing device is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MainDevicePolicy {
    /// Run Algorithm 2 (the paper's method).
    Auto,
    /// Force a specific device (the GTX680-as-main / CPU-as-main baselines
    /// of Fig. 9).
    Fixed(DeviceId),
    /// No main device: every device triangulates and eliminates its own
    /// columns (the "None" baseline of Fig. 9).
    None,
}

/// A complete execution plan for one tiled QR run on a heterogeneous node.
#[derive(Debug, Clone)]
pub struct HeteroPlan {
    /// The main computing device (under [`MainDevicePolicy::None`] this is
    /// still recorded — it owns column 0).
    pub main: DeviceId,
    /// Main-device policy the plan was built with.
    pub policy: MainDevicePolicy,
    /// Participating devices, main first then by update speed.
    pub participants: Vec<DeviceId>,
    /// Column → device distribution.
    pub distribution: Distribution,
    /// Diagnostics from Algorithm 2 (when it ran).
    pub main_selection: Option<MainSelection>,
    /// Diagnostics from Algorithm 3 (when it ran).
    pub count_selection: Option<CountSelection>,
    /// Devices blacklisted when the plan was built (empty for a healthy
    /// plan; populated by mid-run re-planning after a device death).
    pub excluded: Vec<DeviceId>,
}

impl HeteroPlan {
    /// Columns of a `nt`-column grid owned by each device (index =
    /// device id), the input to [`Platform::memory_feasible`].
    pub fn columns_per_device(&self, platform: &Platform, nt: usize) -> Vec<usize> {
        (0..platform.num_devices())
            .map(|d| self.distribution.columns_owned(d, 0, nt))
            .collect()
    }

    /// `true` when every device's working set under this plan fits its
    /// memory capacity (always true for unbounded platforms — the paper's
    /// assumption; its §VIII names the bounded case as future work).
    pub fn fits_memory(&self, platform: &Platform, mt: usize, nt: usize) -> bool {
        platform.memory_feasible(mt, &self.columns_per_device(platform, nt))
    }
}

/// Full planning pipeline with the paper's defaults: Algorithm 2 selects
/// the main device, Algorithm 3 the device count, Algorithm 4 the
/// distribution guide array.
pub fn plan(platform: &Platform, mt: usize, nt: usize) -> HeteroPlan {
    plan_with(
        platform,
        mt,
        nt,
        MainDevicePolicy::Auto,
        DistributionStrategy::GuideArray,
        None,
    )
}

/// Planning pipeline with every knob exposed — used by the experiment
/// harness to build the paper's baselines.
///
/// `force_p` overrides Algorithm 3 with a fixed participant count
/// (clamped to the number of devices).
pub fn plan_with(
    platform: &Platform,
    mt: usize,
    nt: usize,
    policy: MainDevicePolicy,
    strategy: DistributionStrategy,
    force_p: Option<usize>,
) -> HeteroPlan {
    plan_degraded(platform, mt, nt, policy, strategy, force_p, &[])
}

/// [`plan_with`] over the survivors of a device blacklist — the mid-run
/// re-planning entry point. Algorithms 2, 3 and 4 all run on the
/// non-excluded devices only, so a dead device can be neither main nor a
/// participant. With an empty blacklist this *is* `plan_with`.
///
/// Panics if the blacklist covers every device, or if
/// [`MainDevicePolicy::Fixed`] names an excluded device.
pub fn plan_degraded(
    platform: &Platform,
    mt: usize,
    nt: usize,
    policy: MainDevicePolicy,
    strategy: DistributionStrategy,
    force_p: Option<usize>,
    exclude: &[DeviceId],
) -> HeteroPlan {
    let (main, main_selection) = match policy {
        MainDevicePolicy::Auto | MainDevicePolicy::None => {
            let sel = select_main_device_excluding(platform, mt, nt, exclude);
            (sel.device, Some(sel))
        }
        MainDevicePolicy::Fixed(d) => {
            assert!(d < platform.num_devices(), "unknown device {d}");
            assert!(!exclude.contains(&d), "fixed main device {d} is excluded");
            (d, None)
        }
    };

    let count = select_device_count_excluding(platform, main, mt, nt, exclude);
    let survivors = platform.num_devices() - exclude.len();
    let participants = match force_p {
        Some(p) => {
            let p = p.clamp(1, survivors);
            ordered_devices_excluding(platform, main, exclude)[..p].to_vec()
        }
        None => count.devices.clone(),
    };

    let distribution = Distribution::build(platform, main, &participants, strategy);
    HeteroPlan {
        main,
        policy,
        participants,
        distribution,
        main_selection,
        count_selection: Some(count),
        excluded: exclude.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn auto_plan_on_testbed() {
        let p = profiles::paper_testbed(16);
        let plan = plan(&p, 400, 400);
        assert_eq!(plan.main, 0, "GTX580 main");
        assert!(plan.participants.contains(&0));
        assert_eq!(plan.participants[0], 0, "main heads the list");
        assert_eq!(plan.distribution.owner(0), 0);
    }

    #[test]
    fn fixed_policy_overrides_main() {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            100,
            100,
            MainDevicePolicy::Fixed(3),
            DistributionStrategy::GuideArray,
            None,
        );
        assert_eq!(plan.main, 3);
        assert!(plan.main_selection.is_none());
    }

    #[test]
    fn force_p_clamps_and_applies() {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            100,
            100,
            MainDevicePolicy::Auto,
            DistributionStrategy::Even,
            Some(2),
        );
        assert_eq!(plan.participants.len(), 2);
        let plan9 = plan_with(
            &p,
            100,
            100,
            MainDevicePolicy::Auto,
            DistributionStrategy::Even,
            Some(9),
        );
        assert_eq!(plan9.participants.len(), 4, "clamped to device count");
    }

    #[test]
    fn small_matrix_plans_use_few_devices() {
        let gpus = profiles::testbed_subset(3, false, 16);
        let small = plan(&gpus, 10, 10);
        let large = plan(&gpus, 250, 250);
        assert!(small.participants.len() <= large.participants.len());
        assert_eq!(large.participants.len(), 3);
    }

    #[test]
    fn memory_feasibility_of_plans() {
        use tileqr_sim::{Link, SimConfig};
        let unbounded = profiles::paper_testbed(16);
        let p = plan(&unbounded, 100, 100);
        assert!(p.fits_memory(&unbounded, 100, 100), "unbounded always fits");
        let cols = p.columns_per_device(&unbounded, 100);
        assert_eq!(cols.iter().sum::<usize>(), 100);

        // A 1 MiB straitjacket on every device: a 100x100 grid cannot fit.
        let tiny = tileqr_sim::Platform::new(
            unbounded.devices().to_vec(),
            Link::pcie2_x16(),
            SimConfig {
                tile_size: 16,
                elem_bytes: 4,
            },
        )
        .with_device_memory(vec![Some(1 << 20); 4]);
        let p2 = plan(&tiny, 100, 100);
        assert!(!p2.fits_memory(&tiny, 100, 100));
        // A small grid still fits.
        assert!(plan(&tiny, 8, 8).fits_memory(&tiny, 8, 8));
    }

    #[test]
    fn planning_with_xeon_phi_extension() {
        // Future-work device class: the algorithms must handle it without
        // special cases — the Phi ranks between CPU and GPUs on updates.
        use tileqr_sim::{Link, SimConfig};
        let platform = tileqr_sim::Platform::new(
            vec![
                profiles::gtx580(),
                profiles::gtx680(),
                profiles::xeon_phi(),
                profiles::cpu_i7_3820(),
            ],
            Link::pcie2_x16(),
            SimConfig {
                tile_size: 16,
                elem_bytes: 4,
            },
        );
        let hp = plan(&platform, 400, 400);
        assert_eq!(hp.main, 0, "GTX580 still wins Alg. 2");
        let phi_thr = platform.device(2).update_throughput(16);
        assert!(phi_thr > platform.device(3).update_throughput(16));
        assert!(phi_thr < platform.device(1).update_throughput(16));
        // And the fast simulator runs it.
        let stats = crate::fastsim::simulate_fast(&platform, &hp, 400, 400);
        assert!(stats.makespan_us > 0.0);
    }

    #[test]
    fn degraded_plan_excludes_dead_devices_everywhere() {
        let p = profiles::paper_testbed(16);
        let healthy = plan(&p, 400, 400);
        assert_eq!(healthy.main, 0);
        assert!(healthy.excluded.is_empty());

        // Kill the healthy main device: the degraded plan must promote a
        // survivor and keep device 0 out of every structure.
        let degraded = plan_degraded(
            &p,
            400,
            400,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            None,
            &[0],
        );
        assert_ne!(degraded.main, 0);
        assert!(!degraded.participants.contains(&0));
        assert!(degraded.distribution.guide().iter().all(|&d| d != 0));
        assert_eq!(degraded.excluded, vec![0]);
        for pred in &degraded.count_selection.as_ref().unwrap().predictions {
            assert!(!pred.devices.contains(&0));
        }
    }

    #[test]
    fn degraded_to_single_survivor_is_a_valid_plan() {
        let p = profiles::paper_testbed(16);
        let solo = plan_degraded(
            &p,
            50,
            50,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            None,
            &[0, 1, 2],
        );
        assert_eq!(solo.main, 3);
        assert_eq!(solo.participants, vec![3]);
        for j in 0..50 {
            assert_eq!(solo.distribution.owner(j), 3);
        }
    }

    #[test]
    #[should_panic]
    fn degraded_fixed_main_on_blacklist_panics() {
        let p = profiles::paper_testbed(16);
        let _ = plan_degraded(
            &p,
            10,
            10,
            MainDevicePolicy::Fixed(1),
            DistributionStrategy::Even,
            None,
            &[1],
        );
    }

    #[test]
    #[should_panic]
    fn fixed_unknown_device_panics() {
        let p = profiles::paper_testbed(16);
        let _ = plan_with(
            &p,
            10,
            10,
            MainDevicePolicy::Fixed(17),
            DistributionStrategy::Even,
            None,
        );
    }
}
