//! Column → device distributions (the paper's method plus the baselines of
//! Fig. 10).

use crate::guide::{column_owner, generate_guide_array};
use crate::ratio::{device_update_ratio, integer_ratio};
use tileqr_sim::{DeviceId, Platform};

/// How tile columns are spread over the participating devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributionStrategy {
    /// The paper's distribution guide array built from update-throughput
    /// ratios (Alg. 4).
    GuideArray,
    /// Ratios proportional to core counts (the "depending on the number of
    /// cores" baseline of Fig. 10).
    CoresProportional,
    /// Equal share per GPU, with any CPU's share scaled down by its core
    /// count relative to the GPUs (the paper's "even" baseline of Fig. 10:
    /// "the same number of tiles distribution for GPUs with some tiles on
    /// the CPU depending on the number of cores").
    Even,
    /// Extension (not in the paper): the guide array of
    /// [`DistributionStrategy::GuideArray`] applied boustrophedon — odd
    /// cycles walk the array backwards. Eq. 12's plain modulo maps the
    /// small-ratio device's (tail) slots to systematically later, heavier
    /// columns; alternating the direction cancels that positional bias.
    GuideArrayBalanced,
}

/// A concrete cyclic column distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Distribution {
    main: DeviceId,
    guide: Vec<DeviceId>,
    strategy: DistributionStrategy,
}

impl Distribution {
    /// Build a distribution for `participants` (main device first, as
    /// Alg. 3 orders them) on `platform`.
    pub fn build(
        platform: &Platform,
        main: DeviceId,
        participants: &[DeviceId],
        strategy: DistributionStrategy,
    ) -> Self {
        assert!(participants.contains(&main), "main device must participate");
        let tile = platform.config().tile_size;
        let ratio = match strategy {
            DistributionStrategy::GuideArray | DistributionStrategy::GuideArrayBalanced => {
                device_update_ratio(platform, participants, tile)
            }
            DistributionStrategy::CoresProportional => {
                let cores: Vec<f64> = participants
                    .iter()
                    .map(|&d| platform.device(d).cores as f64)
                    .collect();
                integer_ratio(&cores)
            }
            DistributionStrategy::Even => {
                // Equal share per GPU; CPUs scaled by core count relative
                // to the average GPU so a 4-core CPU next to 1000-core
                // GPUs receives (almost) nothing, as in the paper.
                const GPU_SHARE: u64 = 8;
                let gpu_cores: Vec<usize> = participants
                    .iter()
                    .map(|&d| platform.device(d))
                    .filter(|d| d.kind == tileqr_sim::DeviceKind::Gpu)
                    .map(|d| d.cores)
                    .collect();
                let avg_gpu = if gpu_cores.is_empty() {
                    0
                } else {
                    gpu_cores.iter().sum::<usize>() / gpu_cores.len()
                };
                participants
                    .iter()
                    .map(|&d| {
                        let dev = platform.device(d);
                        match dev.kind {
                            tileqr_sim::DeviceKind::Gpu => GPU_SHARE,
                            tileqr_sim::DeviceKind::Cpu => {
                                if avg_gpu == 0 {
                                    GPU_SHARE
                                } else {
                                    (GPU_SHARE * dev.cores as u64) / avg_gpu as u64
                                }
                            }
                        }
                    })
                    .collect()
            }
        };
        let mut guide = generate_guide_array(participants, &ratio);
        if guide.is_empty() {
            // Degenerate ratios (all zero): fall back to the main device.
            guide = vec![main];
        }
        Distribution {
            main,
            guide,
            strategy,
        }
    }

    /// Distribution that keeps every column on a single device.
    pub fn single_device(dev: DeviceId) -> Self {
        Distribution {
            main: dev,
            guide: vec![dev],
            strategy: DistributionStrategy::Even,
        }
    }

    /// The main computing device.
    pub fn main(&self) -> DeviceId {
        self.main
    }

    /// The guide array (cyclic device pattern).
    pub fn guide(&self) -> &[DeviceId] {
        &self.guide
    }

    /// Strategy used to build this distribution.
    pub fn strategy(&self) -> DistributionStrategy {
        self.strategy
    }

    /// Owner of tile column `j` (paper Eq. 12). Column 0 belongs to the
    /// main device "because their only operations are triangulation and
    /// elimination" (Alg. 4, `DISTRIBUTION`).
    pub fn owner(&self, column: usize) -> DeviceId {
        if column == 0 {
            return self.main;
        }
        if self.strategy == DistributionStrategy::GuideArrayBalanced {
            let len = self.guide.len();
            let (cycle, r) = (column / len, column % len);
            let idx = if cycle % 2 == 1 { len - 1 - r } else { r };
            return self.guide[idx];
        }
        column_owner(&self.guide, column)
    }

    /// Number of columns in `k+1..nt` owned by `dev` — the `#tile(i)`
    /// column counts feeding Eq. 10.
    pub fn columns_owned(&self, dev: DeviceId, from: usize, nt: usize) -> usize {
        (from..nt).filter(|&j| self.owner(j) == dev).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn column_zero_is_main() {
        let p = profiles::paper_testbed(16);
        for strat in [
            DistributionStrategy::GuideArray,
            DistributionStrategy::CoresProportional,
            DistributionStrategy::Even,
        ] {
            let d = Distribution::build(&p, 0, &[0, 1, 2, 3], strat);
            assert_eq!(d.owner(0), 0);
        }
    }

    #[test]
    fn even_round_robins() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2], DistributionStrategy::Even);
        let owners: Vec<_> = (1..7).map(|j| d.owner(j)).collect();
        // Cyclic over 3 devices, each once per cycle.
        assert_eq!(owners[0], owners[3]);
        assert_eq!(owners[1], owners[4]);
        let mut unique = owners[..3].to_vec();
        unique.sort_unstable();
        assert_eq!(unique, vec![0, 1, 2]);
    }

    #[test]
    fn guide_array_gives_680_more_columns_than_580() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2, 3], DistributionStrategy::GuideArray);
        let c580 = d.columns_owned(0, 1, 201);
        let c680 = d.columns_owned(1, 1, 201);
        assert!(c680 > c580, "680 {c680} must exceed 580 {c580}");
    }

    #[test]
    fn cores_proportional_matches_core_ratio() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1], DistributionStrategy::CoresProportional);
        // 512 : 1536 = 1 : 3.
        let c0 = d.columns_owned(0, 1, 401);
        let c1 = d.columns_owned(1, 1, 401);
        let ratio = c1 as f64 / c0 as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn single_device_owns_everything() {
        let d = Distribution::single_device(2);
        for j in 0..10 {
            assert_eq!(d.owner(j), 2);
        }
    }

    #[test]
    fn columns_owned_partition() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2, 3], DistributionStrategy::GuideArray);
        let nt = 100;
        let total: usize = (0..4).map(|dev| d.columns_owned(dev, 1, nt)).sum();
        assert_eq!(total, nt - 1);
    }

    #[test]
    #[should_panic]
    fn main_must_participate() {
        let p = profiles::paper_testbed(16);
        let _ = Distribution::build(&p, 3, &[0, 1], DistributionStrategy::Even);
    }
}
