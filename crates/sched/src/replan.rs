//! Mid-run re-planning: re-running Algorithms 2–4 after a fault.
//!
//! The paper plans once, up front, from calibrated device profiles. A
//! device that dies or degrades mid-run invalidates that plan: the guide
//! array keeps feeding columns to a device that will never finish them.
//! This module adds the adaptive layer — at every *panel boundary* the
//! simulator samples the fault plan, and when a participating device has
//! died (or slowed past a damping threshold of what the current plan
//! already priced in) it re-runs
//!
//! 1. Algorithm 2 over the survivors
//!    ([`crate::main_select::select_main_device_excluding`]),
//! 2. Algorithm 3 over the survivors
//!    ([`crate::device_count::select_device_count_excluding`]),
//! 3. Algorithm 4 on the *observed* platform
//!    ([`tileqr_sim::Platform::observed`]) for the remaining
//!    `(mt−k) × (nt−k)` grid,
//!
//! then migrates every re-owned column across the bus (batched transfers,
//! charged to the same serialized PCIe model as all other traffic) and
//! resumes the pipeline. Panel boundaries are the natural re-planning
//! points because the commit protocol makes everything to the left of the
//! panel immutable — no in-flight state needs rescue.

use crate::fastsim::{panel_step, PipelineState};
use crate::plan::{plan_degraded, HeteroPlan, MainDevicePolicy};
use tileqr_sim::{DeviceId, FaultPlan, Platform, SimStats};

/// When the adaptive simulator is allowed to re-plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplanPolicy {
    /// Master switch. `false` gives the no-replan baseline: faults still
    /// apply, the plan never changes (a dead column owner then means an
    /// infinite makespan).
    pub enabled: bool,
    /// A live device triggers re-planning when its observed slowdown
    /// reaches `slowdown_threshold ×` the slowdown the current plan was
    /// built against. The ratio form damps repeat triggers: after a
    /// re-plan the observed slowdown is the new baseline.
    pub slowdown_threshold: f64,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            enabled: true,
            slowdown_threshold: 4.0,
        }
    }
}

impl ReplanPolicy {
    /// The no-replan baseline.
    pub fn disabled() -> Self {
        ReplanPolicy {
            enabled: false,
            ..Self::default()
        }
    }
}

/// One re-planning decision, recorded for inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanEvent {
    /// Panel index at whose boundary the re-plan fired.
    pub panel: usize,
    /// Simulation clock when it fired, microseconds.
    pub at_us: f64,
    /// Cumulative device blacklist after this event.
    pub excluded: Vec<DeviceId>,
    /// Main device selected by the re-run of Algorithm 2.
    pub main: DeviceId,
    /// Participants selected by the re-run of Algorithm 3.
    pub participants: Vec<DeviceId>,
    /// Bytes of column data moved to new owners by this event.
    pub migrated_bytes: u64,
}

/// Result of an adaptive simulation.
#[derive(Debug, Clone)]
pub struct AdaptiveRun {
    /// Simulation statistics ([`SimStats::replan_count`] and
    /// [`SimStats::migrated_bytes`] are populated here).
    pub stats: SimStats,
    /// Every re-planning event, in panel order.
    pub replans: Vec<ReplanEvent>,
    /// The plan in force when the run finished (the initial plan if no
    /// re-plan fired).
    pub plan: HeteroPlan,
}

/// Simulate an `mt × nt` tiled QR under `initial`, injecting `faults` and
/// re-planning per `policy`.
///
/// With an empty fault plan this reproduces [`crate::fastsim::simulate_fast`]
/// bit for bit (every kernel time is multiplied by exactly `1.0`). A dead
/// device makes every chain scheduled on it infinitely long, so the
/// disabled-policy baseline reports an infinite makespan whenever a dead
/// device still owns columns — the quantity the adaptive run is measured
/// against.
pub fn simulate_adaptive(
    platform: &Platform,
    initial: &HeteroPlan,
    mt: usize,
    nt: usize,
    faults: &FaultPlan,
    policy: &ReplanPolicy,
) -> AdaptiveRun {
    assert!(mt > 0 && nt > 0);
    let ndev = platform.num_devices();
    let mut state = PipelineState::new(platform, nt);
    let mut plan = initial.clone();
    let mut owner: Vec<usize> = (0..nt).map(|j| plan.distribution.owner(j)).collect();
    let mut excluded: Vec<DeviceId> = plan.excluded.clone();
    // Slowdown each device had when the current plan was built — the
    // denominator of the damped trigger.
    let mut profiled = vec![1.0f64; ndev];
    let mut slow = vec![1.0f64; ndev];
    let mut replans: Vec<ReplanEvent> = Vec::new();

    let kmax = mt.min(nt);
    for k in 0..kmax {
        let now = state.frontier_us();
        for (d, s) in slow.iter_mut().enumerate() {
            *s = faults.effective_slowdown(d, now);
        }

        if policy.enabled {
            // A device matters only if it still owns a remaining column or
            // runs the T/E chains.
            let mut active = vec![false; ndev];
            for &o in &owner[k..] {
                active[o] = true;
            }
            if plan.policy != MainDevicePolicy::None {
                active[plan.main] = true;
            }
            let triggered = (0..ndev).any(|d| {
                active[d]
                    && !excluded.contains(&d)
                    && (slow[d].is_infinite() || slow[d] >= policy.slowdown_threshold * profiled[d])
            });
            if triggered {
                // Blacklist every dead device, active or not — a re-plan
                // must never hand work back to one.
                let mut next_excluded = excluded.clone();
                for (d, s) in slow.iter().enumerate() {
                    if s.is_infinite() && !next_excluded.contains(&d) {
                        next_excluded.push(d);
                    }
                }
                if next_excluded.len() < ndev {
                    excluded = next_excluded;
                    // Re-plan on the platform as observed: survivors keep
                    // their measured (possibly degraded) speed.
                    let factors: Vec<f64> = slow
                        .iter()
                        .map(|&s| if s.is_finite() { s } else { 1.0 })
                        .collect();
                    let observed = platform.observed(&factors);
                    let new_plan = plan_degraded(
                        &observed,
                        mt - k,
                        nt - k,
                        MainDevicePolicy::Auto,
                        plan.distribution.strategy(),
                        None,
                        &excluded,
                    );

                    // Migrate every remaining column whose owner changed:
                    // one batched bus transfer of its live (mt−k)-tile
                    // slice, flooring the column's pipeline state to the
                    // arrival time.
                    let mut migrated = 0u64;
                    for (j, own) in owner.iter_mut().enumerate().take(nt).skip(k) {
                        let new_owner = new_plan.distribution.owner(j - k);
                        if new_owner != *own {
                            let tiles = (mt - k) as u64;
                            let t0 = state.bus_free.max(now);
                            let occupancy = state.batch_lat + tiles as f64 * state.per_tile_wire;
                            state.bus_free = t0 + occupancy;
                            state.stats.bus_busy_us += occupancy;
                            let bytes = tiles * state.tile_bytes;
                            state.stats.bytes_transferred += bytes;
                            state.stats.migrated_bytes += bytes;
                            state.stats.transfer_count += 1;
                            migrated += bytes;
                            state.head[j] =
                                state.head[j].max(t0 + state.batch_lat + state.per_tile_wire);
                            state.full[j] = state.full[j].max(t0 + occupancy);
                            *own = new_owner;
                        }
                    }

                    state.stats.replan_count += 1;
                    replans.push(ReplanEvent {
                        panel: k,
                        at_us: now,
                        excluded: excluded.clone(),
                        main: new_plan.main,
                        participants: new_plan.participants.clone(),
                        migrated_bytes: migrated,
                    });
                    // Damp: the new plan prices in today's slowdowns.
                    for d in 0..ndev {
                        if slow[d].is_finite() {
                            profiled[d] = slow[d].max(1.0);
                        }
                    }
                    plan = new_plan;
                }
                // else: every device is dead — nothing to re-plan onto;
                // the run degenerates to the baseline (infinite makespan).
            }
        }

        let te_dev = match plan.policy {
            MainDevicePolicy::None => owner[k],
            _ => plan.main,
        };
        panel_step(&mut state, &owner, te_dev, k, mt, nt, &slow);
    }

    let mut stats = state.stats;
    stats.makespan_us = state.full.iter().cloned().fold(0.0, f64::max);
    AdaptiveRun {
        stats,
        replans,
        plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crate::fastsim::simulate_fast;
    use crate::plan::plan_with;
    use tileqr_sim::profiles;

    fn testbed_plan(nt: usize) -> (Platform, HeteroPlan) {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            nt,
            nt,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(4),
        );
        (p, plan)
    }

    #[test]
    fn no_faults_matches_fastsim_bit_for_bit() {
        let (p, plan) = testbed_plan(60);
        let exact = simulate_fast(&p, &plan, 60, 60);
        let adaptive = simulate_adaptive(
            &p,
            &plan,
            60,
            60,
            &FaultPlan::none(),
            &ReplanPolicy::default(),
        );
        assert_eq!(adaptive.stats, exact, "ones-multiplier run must be exact");
        assert_eq!(adaptive.stats.replan_count, 0);
        assert_eq!(adaptive.stats.migrated_bytes, 0);
        assert!(adaptive.replans.is_empty());
    }

    #[test]
    fn worker_device_death_triggers_replan_and_beats_baseline() {
        let (p, plan) = testbed_plan(80);
        let healthy = simulate_fast(&p, &plan, 80, 80).makespan_us;
        // Kill a GTX680 (an update workhorse) a third of the way in.
        let faults = FaultPlan::none().with_device_death(1, healthy * 0.3);

        let adaptive = simulate_adaptive(&p, &plan, 80, 80, &faults, &ReplanPolicy::default());
        assert!(adaptive.stats.replan_count >= 1);
        assert!(adaptive.stats.makespan_us.is_finite());
        assert!(
            adaptive.stats.migrated_bytes > 0,
            "dead owner's columns move"
        );
        let ev = &adaptive.replans[0];
        assert!(ev.excluded.contains(&1));
        assert_ne!(ev.main, 1);
        assert!(!ev.participants.contains(&1));
        assert!(ev.panel > 0, "death at 30% must not fire at panel 0");

        let baseline = simulate_adaptive(&p, &plan, 80, 80, &faults, &ReplanPolicy::disabled());
        assert_eq!(baseline.stats.replan_count, 0);
        assert!(
            baseline.stats.makespan_us.is_infinite(),
            "a dead column owner can never finish without re-planning"
        );
        assert!(adaptive.stats.makespan_us < baseline.stats.makespan_us);
    }

    #[test]
    fn main_device_death_promotes_a_new_main() {
        let (p, plan) = testbed_plan(60);
        assert_eq!(plan.main, 0);
        let healthy = simulate_fast(&p, &plan, 60, 60).makespan_us;
        let faults = FaultPlan::none().with_device_death(0, healthy * 0.5);
        let run = simulate_adaptive(&p, &plan, 60, 60, &faults, &ReplanPolicy::default());
        assert!(run.stats.replan_count >= 1);
        assert!(run.stats.makespan_us.is_finite());
        assert_ne!(run.plan.main, 0, "dead main must be replaced");
        assert!(run.plan.excluded.contains(&0));
    }

    #[test]
    fn sustained_slowdown_replans_once_thanks_to_damping() {
        let (p, plan) = testbed_plan(60);
        // Device 1 runs 10× slow for the whole run: over the default 4×
        // threshold once, but the re-plan prices it in, so the same
        // sustained slowdown must not keep firing.
        let faults = FaultPlan::none().with_device_slowdown(1, 0.0, f64::MAX, 10.0);
        let run = simulate_adaptive(&p, &plan, 60, 60, &faults, &ReplanPolicy::default());
        assert_eq!(
            run.stats.replan_count, 1,
            "damping must stop repeat triggers"
        );
        assert!(run.stats.makespan_us.is_finite());
    }

    #[test]
    fn all_devices_dead_degenerates_without_panicking() {
        let (p, plan) = testbed_plan(20);
        let mut faults = FaultPlan::none();
        for d in 0..p.num_devices() {
            faults = faults.with_device_death(d, 0.0);
        }
        let run = simulate_adaptive(&p, &plan, 20, 20, &faults, &ReplanPolicy::default());
        assert!(run.stats.makespan_us.is_infinite());
        assert_eq!(run.stats.replan_count, 0, "nothing left to re-plan onto");
    }

    #[test]
    fn dead_inactive_device_is_ignored_silently() {
        // Only device 0 participates; device 3 dying must not trigger.
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            30,
            30,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(1),
        );
        let faults = FaultPlan::none().with_device_death(3, 0.0);
        let run = simulate_adaptive(&p, &plan, 30, 30, &faults, &ReplanPolicy::default());
        assert_eq!(run.stats.replan_count, 0);
        assert!(run.stats.makespan_us.is_finite());
    }
}
