//! Integer update-throughput ratios (paper Alg. 4, `GET_RATIO`).
//!
//! "Before distribution, we first find the integer ratio of all the devices
//! using the number of tiles that can be updated in a unit time. For
//! example, if three devices … can process 8, 12 and 4 tiles in a unit
//! time, respectively, the ratio will be 2 : 3 : 1."

use tileqr_sim::{DeviceId, Platform};

/// Largest ratio entry the reduction aims for; keeps guide arrays short
/// even when device throughputs are wildly disparate (a GPU can be two
/// orders of magnitude faster at updates than the 4-core CPU).
pub const MAX_RATIO: u64 = 64;

/// Reduce raw per-device throughput figures to a small integer ratio.
///
/// The figures are scaled so the fastest device maps to at most
/// [`MAX_RATIO`], rounded, and divided by their GCD. A device whose share
/// rounds to zero gets ratio 0 — it is effectively excluded from update
/// duty (the paper observes the CPU's "aid is not much effective", §VI-C).
pub fn integer_ratio(throughputs: &[f64]) -> Vec<u64> {
    assert!(!throughputs.is_empty());
    assert!(
        throughputs.iter().all(|&t| t >= 0.0 && t.is_finite()),
        "throughputs must be finite and non-negative"
    );
    let max = throughputs.iter().cloned().fold(0.0f64, f64::max);
    if max == 0.0 {
        return vec![0; throughputs.len()];
    }
    // First try to integerize exactly (the paper's 8:12:4 -> 2:3:1 case):
    // scale by the smallest positive value and check near-integrality.
    let min_pos = throughputs
        .iter()
        .cloned()
        .filter(|&t| t > 0.0)
        .fold(f64::INFINITY, f64::min);
    let exact: Vec<u64> = throughputs
        .iter()
        .map(|&t| (t / min_pos * 1e6).round() as u64)
        .collect();
    let scaled = if exact
        .iter()
        .all(|&v| v % 1_000_000 == 0 && v / 1_000_000 <= MAX_RATIO)
    {
        exact.iter().map(|&v| v / 1_000_000).collect::<Vec<u64>>()
    } else {
        // General case: normalize the maximum to MAX_RATIO and round.
        let scale = MAX_RATIO as f64 / max;
        throughputs
            .iter()
            .map(|&t| (t * scale).round() as u64)
            .collect()
    };
    reduce_by_gcd(scaled)
}

/// Update-throughput ratio for a set of devices on `platform` at the given
/// tile size — the concrete `GET_RATIO` of Algorithm 4.
pub fn device_update_ratio(
    platform: &Platform,
    devices: &[DeviceId],
    tile_size: usize,
) -> Vec<u64> {
    let throughputs: Vec<f64> = devices
        .iter()
        .map(|&d| platform.device(d).update_throughput(tile_size))
        .collect();
    integer_ratio(&throughputs)
}

fn reduce_by_gcd(mut v: Vec<u64>) -> Vec<u64> {
    let g = v.iter().fold(0u64, |acc, &x| gcd(acc, x));
    if g > 1 {
        for x in &mut v {
            *x /= g;
        }
    }
    v
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn paper_example_8_12_4() {
        assert_eq!(integer_ratio(&[8.0, 12.0, 4.0]), vec![2, 3, 1]);
    }

    #[test]
    fn equal_throughputs_give_ones() {
        assert_eq!(integer_ratio(&[5.0, 5.0, 5.0]), vec![1, 1, 1]);
    }

    #[test]
    fn tiny_share_rounds_to_zero() {
        let r = integer_ratio(&[100.0, 0.1]);
        assert_eq!(r[1], 0);
        assert!(r[0] > 0);
    }

    #[test]
    fn zero_everything() {
        assert_eq!(integer_ratio(&[0.0, 0.0]), vec![0, 0]);
    }

    #[test]
    fn ratio_bounded() {
        let r = integer_ratio(&[1000.0, 333.0, 1.0]);
        assert!(r.iter().all(|&x| x <= MAX_RATIO));
    }

    #[test]
    fn testbed_ratio_favors_gtx680() {
        // Devices: [GTX580, GTX680, GTX680, CPU].
        let p = profiles::paper_testbed(16);
        let r = device_update_ratio(&p, &[0, 1, 2, 3], 16);
        assert!(r[1] > r[0], "680 must out-rank 580: {r:?}");
        assert_eq!(r[1], r[2], "identical devices get identical ratios");
        assert!(r[3] <= r[0] / 2, "CPU share must be marginal: {r:?}");
    }

    #[test]
    fn gcd_reduction() {
        assert_eq!(integer_ratio(&[4.0, 8.0]), vec![1, 2]);
        assert_eq!(integer_ratio(&[6.0, 9.0, 3.0]), vec![2, 3, 1]);
    }

    #[test]
    #[should_panic]
    fn negative_rejected() {
        let _ = integer_ratio(&[-1.0, 2.0]);
    }
}
