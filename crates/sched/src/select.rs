//! Geometry-aware elimination-tree auto-selection.
//!
//! The elimination-tree zoo ([`tileqr_dag::EliminationTree`]) trades task
//! count against critical-path depth: the paper's flat TS chain does the
//! least work but serializes each panel; the TT trees shorten the panel
//! to logarithmic depth at the cost of extra `GEQRT`/`TTQRT` kernels.
//! Which shape wins depends on the grid geometry `(p, q)`, the tile size
//! `b`, and how much parallelism the device actually has — exactly the
//! kind of question the workspace answers by *simulating*, not guessing.
//!
//! [`select_tree`] builds each candidate tree's DAG and replays it
//! through the discrete-event engine on a single-device platform whose
//! timing curves come from a calibrated [`DeviceProfile`] (fit from real
//! compute spans by `obs::calibrate`). The predicted-makespan winner
//! becomes the plan; `TreePolicy::Auto` in the core options and the
//! service's per-job planning route here when a profile is available and
//! degrade to [`EliminationTree::default_for`] when not.
//!
//! The prediction is deterministic per `(tree, profile, geometry)`: the
//! engine breaks every tie by task id, so two calls always return the
//! same ranking.

use std::sync::Arc;
use tileqr_dag::{EliminationTree, TaskGraph, TreePolicy};
use tileqr_sim::{engine, DeviceProfile, Link, Platform, SimConfig};

/// Predicted cost of one `(tree, tile-size)` candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeScore {
    /// The candidate tree.
    pub tree: EliminationTree,
    /// Tile size the prediction ran at.
    pub tile_size: usize,
    /// Tile-grid geometry the candidate was evaluated on.
    pub grid: (usize, usize),
    /// Total tasks in the candidate's DAG.
    pub tasks: usize,
    /// Predicted makespan, microseconds.
    pub makespan_us: f64,
}

/// Outcome of a selection sweep: the winner plus the full ranking
/// (ascending makespan) for observability and golden tests.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// The predicted-makespan winner.
    pub best: TreeScore,
    /// Every evaluated candidate, best first.
    pub ranked: Vec<TreeScore>,
}

/// The candidate trees worth simulating for an `mt x nt` grid: the
/// all-geometry zoo, plus the TSQR fast path on tall-skinny grids.
pub fn candidate_trees(mt: usize, nt: usize) -> Vec<EliminationTree> {
    let mut trees = vec![
        EliminationTree::Flat,
        EliminationTree::Binary,
        EliminationTree::Fibonacci,
        EliminationTree::Greedy,
        EliminationTree::Plateau(2),
        EliminationTree::Plateau(4),
    ];
    if nt <= 2 && mt >= 2 {
        trees.push(EliminationTree::Tsqr(EliminationTree::tsqr_domain(mt)));
    }
    trees
}

/// Predicted makespan (µs) of `tree` on an `mt x nt` grid at tile size
/// `b`, on a single device described by `profile`. Deterministic per
/// input; no fault model, no bus traffic (single device).
pub fn predict_makespan_us(
    profile: &DeviceProfile,
    mt: usize,
    nt: usize,
    b: usize,
    tree: EliminationTree,
) -> f64 {
    let g = TaskGraph::build_tree(mt, nt, tree);
    let platform = Platform::new(
        vec![profile.clone()],
        Link::pcie2_x16(),
        SimConfig {
            tile_size: b,
            elem_bytes: 8,
        },
    );
    let assignment = vec![0; g.len()];
    engine::simulate(&g, &platform, &assignment).makespan_us
}

/// Score every candidate tree for an `mt x nt` grid at tile size `b`
/// and return the ranking. Panics on an empty grid.
pub fn select_tree(profile: &DeviceProfile, mt: usize, nt: usize, b: usize) -> Selection {
    select_candidates(profile, mt, nt, b, &candidate_trees(mt, nt))
}

/// [`select_tree`] over an explicit candidate list (used by the bench to
/// score the same zoo it measures).
pub fn select_candidates(
    profile: &DeviceProfile,
    mt: usize,
    nt: usize,
    b: usize,
    trees: &[EliminationTree],
) -> Selection {
    assert!(mt > 0 && nt > 0, "empty tile grid");
    assert!(!trees.is_empty(), "no candidate trees");
    let mut ranked: Vec<TreeScore> = trees
        .iter()
        .map(|&tree| {
            let tasks = TaskGraph::build_tree(mt, nt, tree).len();
            TreeScore {
                tree,
                tile_size: b,
                grid: (mt, nt),
                tasks,
                makespan_us: predict_makespan_us(profile, mt, nt, b, tree),
            }
        })
        .collect();
    // Stable keys: makespan, then fewer tasks, then label — so equal
    // predictions rank deterministically.
    ranked.sort_by(|x, y| {
        x.makespan_us
            .total_cmp(&y.makespan_us)
            .then(x.tasks.cmp(&y.tasks))
            .then(x.tree.label().cmp(&y.tree.label()))
    });
    Selection {
        best: ranked[0].clone(),
        ranked,
    }
}

/// Sweep `(tree, tile size)` candidates for a `rows x cols` *matrix* and
/// return the overall winner: for each tile size the grid geometry is
/// derived (`⌈rows/b⌉ x ⌈cols/b⌉`) and the full candidate zoo scored.
pub fn select_plan(
    profile: &DeviceProfile,
    rows: usize,
    cols: usize,
    tile_sizes: &[usize],
) -> Selection {
    assert!(rows > 0 && cols > 0, "empty matrix");
    assert!(!tile_sizes.is_empty(), "no tile-size candidates");
    let mut all: Vec<TreeScore> = Vec::new();
    for &b in tile_sizes {
        assert!(b > 0, "zero tile size");
        let mt = rows.div_ceil(b);
        let nt = cols.div_ceil(b);
        all.extend(select_tree(profile, mt, nt, b).ranked);
    }
    all.sort_by(|x, y| {
        x.makespan_us
            .total_cmp(&y.makespan_us)
            .then(x.tasks.cmp(&y.tasks))
            .then(x.tree.label().cmp(&y.tree.label()))
    });
    Selection {
        best: all[0].clone(),
        ranked: all,
    }
}

/// Resolve a [`TreePolicy`] for an `mt x nt` grid at tile size `b`:
/// `Fixed` is identity; `Auto` runs the calibrated selector when a
/// profile is present and falls back to the geometry heuristic
/// ([`EliminationTree::default_for`]) when not.
pub fn choose_tree(
    profile: Option<&DeviceProfile>,
    policy: TreePolicy,
    mt: usize,
    nt: usize,
    b: usize,
) -> EliminationTree {
    match (policy, profile) {
        (TreePolicy::Fixed(tree), _) => tree,
        (TreePolicy::Auto, Some(p)) => select_tree(p, mt, nt, b).best.tree,
        (TreePolicy::Auto, None) => EliminationTree::default_for(mt, nt),
    }
}

/// Package a calibrated profile as the `(mt, nt, b) -> tree` closure the
/// service's per-job planner accepts
/// (`QrService::start_with_tree_selector`).
pub fn tree_selector(
    profile: DeviceProfile,
) -> Arc<dyn Fn(usize, usize, usize) -> EliminationTree + Send + Sync> {
    Arc::new(move |mt, nt, b| select_tree(&profile, mt, nt, b).best.tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::{DeviceKind, KernelTiming, StepTimes};

    fn profile(cores: usize) -> DeviceProfile {
        let t = |c0: f64, c3: f64| KernelTiming {
            c0,
            c1: 0.0,
            c2: c3,
        };
        DeviceProfile {
            name: format!("synthetic-{cores}c"),
            kind: DeviceKind::Cpu,
            cores,
            times: StepTimes {
                triangulation: t(2.0, 0.004),
                elimination: t(2.0, 0.004),
                update: t(2.0, 0.006),
            },
        }
    }

    #[test]
    fn selection_is_deterministic() {
        let p = profile(4);
        let a = select_tree(&p, 16, 1, 16);
        let b = select_tree(&p, 16, 1, 16);
        assert_eq!(a, b);
        assert_eq!(a.ranked.len(), candidate_trees(16, 1).len());
    }

    #[test]
    fn serial_device_prefers_minimal_work() {
        // One slot serializes everything: makespan = sum of kernel times,
        // so the flat chain (fewest tasks, cheapest mix) must win.
        let sel = select_tree(&profile(1), 12, 1, 16);
        assert_eq!(sel.best.tree, EliminationTree::Flat, "{:?}", sel.ranked);
    }

    #[test]
    fn parallel_device_prefers_log_depth_on_tall_skinny() {
        let sel = select_tree(&profile(16), 32, 1, 16);
        assert_ne!(
            sel.best.tree,
            EliminationTree::Flat,
            "16 slots must beat the serial chain: {:?}",
            sel.ranked
        );
        // The winner's predicted makespan is the ranking minimum.
        for s in &sel.ranked {
            assert!(sel.best.makespan_us <= s.makespan_us);
        }
    }

    #[test]
    fn auto_without_profile_degrades_to_heuristic() {
        assert_eq!(
            choose_tree(None, TreePolicy::Auto, 16, 1, 16),
            EliminationTree::default_for(16, 1)
        );
        assert_eq!(
            choose_tree(None, TreePolicy::Fixed(EliminationTree::Greedy), 16, 1, 16),
            EliminationTree::Greedy
        );
    }

    #[test]
    fn selector_closure_matches_direct_call() {
        let p = profile(8);
        let f = tree_selector(p.clone());
        assert_eq!(f(16, 1, 16), select_tree(&p, 16, 1, 16).best.tree);
    }

    #[test]
    fn plan_sweep_covers_all_tile_sizes() {
        let p = profile(4);
        let sel = select_plan(&p, 256, 32, &[16, 32]);
        assert!(sel.ranked.iter().any(|s| s.tile_size == 16));
        assert!(sel.ranked.iter().any(|s| s.tile_size == 32));
        assert!(sel.best.makespan_us <= sel.ranked.last().unwrap().makespan_us);
    }
}
