//! Fast pipelined simulator at column-chain granularity.
//!
//! The exact task-level simulator (`tileqr_sim::engine`) materializes every
//! kernel invocation; at the paper's largest size (16 000² at tile 16 →
//! a 1000×1000 tile grid) that is ~3.3·10⁸ tasks, far past what fits in
//! memory. This simulator exploits the regular structure of the TS tiled-QR
//! DAG to run in `O(nt²)` time instead:
//!
//! * a panel's T/E work is one *chain* whose links complete at a steady
//!   `step` rate (each `TSQRT` depends on the previous one),
//! * a column's update work per panel is likewise a chain (each `TSMQR`
//!   rewrites the pivot-row tile),
//! * chains of consecutive panels *pipeline*: each column carries a
//!   `(head, step)` pair — when its first row-block is ready and the rate
//!   at which the following rows become ready — so panel `k+1` starts as
//!   soon as the head of column `k+1`'s update is done, exactly like the
//!   lookahead execution of the real runtime,
//! * devices expose `slots` parallel chain lanes; the PCIe bus serializes
//!   the per-panel factor broadcasts and next-column moves as batched
//!   transfers (Eq. 11 payloads).
//!
//! Integration tests validate it against the exact simulator on grids
//! where both run.

use crate::plan::{HeteroPlan, MainDevicePolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tileqr_sim::{KernelClass, Platform, SimStats};

/// Total-ordering wrapper so `f64` times can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-device lane pool: the earliest-available of `slots` chain lanes.
pub(crate) struct Lanes {
    heap: BinaryHeap<Reverse<Time>>,
}

impl Lanes {
    fn new(slots: usize) -> Self {
        let mut heap = BinaryHeap::with_capacity(slots);
        for _ in 0..slots {
            heap.push(Reverse(Time(0.0)));
        }
        Lanes { heap }
    }

    /// Occupy the earliest lane from `max(lane, ready)` for `dur`; returns
    /// the start time.
    fn occupy(&mut self, ready: f64, dur: f64) -> f64 {
        let Reverse(Time(lane)) = self.heap.pop().expect("at least one lane");
        let start = lane.max(ready);
        self.heap.push(Reverse(Time(start + dur)));
        start
    }
}

/// Mutable state of the column-chain pipeline, factored out of
/// [`simulate_fast`] so the adaptive re-planning simulator
/// ([`crate::replan`]) can advance it panel by panel, inspect the clock at
/// panel boundaries, and splice in migration transfers.
pub(crate) struct PipelineState {
    /// Per column: when its first row-block is up to date.
    pub(crate) head: Vec<f64>,
    /// Per column: when its last row-block is up to date.
    pub(crate) full: Vec<f64>,
    /// Per device: the `slots` parallel chain lanes.
    pub(crate) lanes: Vec<Lanes>,
    /// When the shared bus next frees up.
    pub(crate) bus_free: f64,
    /// Accumulated statistics (makespan filled in at the end).
    pub(crate) stats: SimStats,
    /// Per-device nominal kernel times, microseconds.
    pub(crate) t_t: Vec<f64>,
    pub(crate) t_e: Vec<f64>,
    pub(crate) t_u: Vec<f64>,
    /// Wire time of one tile at bus bandwidth, microseconds.
    pub(crate) per_tile_wire: f64,
    /// Bus bandwidth, bytes per microsecond.
    pub(crate) bandwidth: f64,
    /// Batched-transfer setup latency, microseconds.
    pub(crate) batch_lat: f64,
    /// Bytes of one tile.
    pub(crate) tile_bytes: u64,
}

impl PipelineState {
    pub(crate) fn new(platform: &Platform, nt: usize) -> Self {
        let b = platform.config().tile_size;
        let tile_bytes = platform.config().tile_bytes();
        let ndev = platform.num_devices();
        PipelineState {
            head: vec![0.0; nt],
            full: vec![0.0; nt],
            lanes: (0..ndev)
                .map(|d| Lanes::new(platform.device(d).slots(b)))
                .collect(),
            bus_free: 0.0,
            stats: SimStats::new(ndev),
            t_t: (0..ndev)
                .map(|d| {
                    platform
                        .device(d)
                        .kernel_time_us(KernelClass::Triangulation, b)
                })
                .collect(),
            t_e: (0..ndev)
                .map(|d| {
                    platform
                        .device(d)
                        .kernel_time_us(KernelClass::Elimination, b)
                })
                .collect(),
            t_u: (0..ndev)
                .map(|d| platform.device(d).kernel_time_us(KernelClass::Update, b))
                .collect(),
            per_tile_wire: tile_bytes as f64 / platform.link().bandwidth_bytes_per_us,
            bandwidth: platform.link().bandwidth_bytes_per_us,
            batch_lat: platform.link().batch_latency_us,
            tile_bytes,
        }
    }

    /// Makespan seen so far: the latest column completion.
    pub(crate) fn frontier_us(&self) -> f64 {
        self.full.iter().cloned().fold(0.0, f64::max)
    }
}

/// Advance the pipeline by one panel. `slow[d]` multiplies device `d`'s
/// kernel times for this panel (1.0 = nominal; multiplying by 1.0 is
/// bit-exact, so a run with all-ones `slow` reproduces the un-faulted
/// simulation to the last bit). An `INFINITY` entry models a dead device:
/// any chain placed on it — and everything downstream — never finishes.
pub(crate) fn panel_step(
    state: &mut PipelineState,
    owner: &[usize],
    te_dev: usize,
    k: usize,
    mt: usize,
    nt: usize,
    slow: &[f64],
) {
    let m = mt - k; // tiles in the panel column
    let ndev = state.lanes.len();
    let tt = state.t_t[te_dev] * slow[te_dev];
    let te = state.t_e[te_dev] * slow[te_dev];

    // Bring the panel column to the T/E device (chunked batched copy:
    // one setup, then tiles stream at wire rate).
    let (mut in_head, mut in_full) = (state.head[k], state.full[k]);
    if owner[k] != te_dev {
        let t0 = state.bus_free.max(in_head);
        let occupancy = state.batch_lat + m as f64 * state.per_tile_wire;
        state.bus_free = t0 + occupancy;
        state.stats.bus_busy_us += occupancy;
        state.stats.bytes_transferred += m as u64 * state.tile_bytes;
        state.stats.transfer_count += 1;
        in_head = t0 + state.batch_lat + state.per_tile_wire;
        in_full = in_full.max(t0 + occupancy);
    }

    // T/E chain on the T/E device: starts when the column head is
    // there, finishes no earlier than its own serial chain and no
    // earlier than the column's last row plus one elimination.
    let chain = tt + (m - 1) as f64 * te;
    let te_start = state.lanes[te_dev].occupy(in_head, chain);
    let te_head = te_start + tt + if m > 1 { te } else { 0.0 };
    let te_full = (te_start + chain).max(in_full + te);
    state.stats.device_busy_us[te_dev] += chain;
    state.stats.tasks_per_device[te_dev] += m as u64;
    state.head[k] = te_start + tt;
    state.full[k] = te_full;

    // Broadcast the Q data (Eq. 11: 3MT² elements) to every other
    // device that owns trailing columns. `factor_head` is when a
    // device sees the panel's first V+T block, `factor_full` when it
    // has the last one.
    let mut factor_head = vec![f64::INFINITY; ndev];
    let mut factor_full = vec![f64::INFINITY; ndev];
    factor_head[te_dev] = te_head;
    factor_full[te_dev] = te_full;
    let mut needs: Vec<bool> = vec![false; ndev];
    for &o in owner.iter().take(nt).skip(k + 1) {
        needs[o] = true;
    }
    for d in 0..ndev {
        if d == te_dev || !needs[d] {
            continue;
        }
        let t0 = state.bus_free.max(te_head);
        let payload = 3 * m as u64 * state.tile_bytes;
        let occupancy = state.batch_lat + payload as f64 / state.bandwidth;
        state.bus_free = t0 + occupancy;
        state.stats.bus_busy_us += occupancy;
        state.stats.bytes_transferred += payload;
        state.stats.transfer_count += 1;
        // The first V+T block lands after the setup; the last when the
        // stream drains and the chain has produced it.
        factor_head[d] = t0 + state.batch_lat + 2.0 * state.per_tile_wire;
        factor_full[d] = (t0 + occupancy).max(te_full + 2.0 * state.per_tile_wire);
    }

    // Update chains, next panel's column first. A chain occupies a
    // lane for its own work; its completion is additionally floored by
    // (a) the previous chain on the same column finishing its last
    // row, and (b) the last factor arriving — endpoint constraints
    // that bound any link-level schedule without ratcheting the
    // device's throughput.
    for (j, &d) in owner.iter().enumerate().take(nt).skip(k + 1) {
        let tu = state.t_u[d] * slow[d];
        let links = m as f64; // 1 UNMQR + (m-1) TSMQRs
        let own_dur = links * tu;
        let ready = state.head[j].max(factor_head[d]);
        let start = state.lanes[d].occupy(ready, own_dur);
        let own_full = start + own_dur;
        state.full[j] = own_full.max(state.full[j] + tu).max(factor_full[d] + tu);
        state.head[j] = start.max(factor_head[d]) + 2.0 * tu;
        state.stats.device_busy_us[d] += own_dur;
        state.stats.tasks_per_device[d] += m as u64;
    }
}

/// Simulate a full tiled QR of an `mt x nt` tile grid under `plan`.
pub fn simulate_fast(platform: &Platform, plan: &HeteroPlan, mt: usize, nt: usize) -> SimStats {
    assert!(mt > 0 && nt > 0);
    let ndev = platform.num_devices();
    let dist = &plan.distribution;
    let owner: Vec<usize> = (0..nt).map(|j| dist.owner(j)).collect();
    let mut state = PipelineState::new(platform, nt);
    let nominal = vec![1.0f64; ndev];

    let kmax = mt.min(nt);
    for k in 0..kmax {
        let te_dev = match plan.policy {
            MainDevicePolicy::None => owner[k],
            _ => plan.main,
        };
        panel_step(&mut state, &owner, te_dev, k, mt, nt, &nominal);
    }

    let mut stats = state.stats;
    stats.makespan_us = state.full.iter().cloned().fold(0.0, f64::max);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crate::plan::plan_with;
    use tileqr_sim::profiles;

    fn run(nt: usize, force_p: Option<usize>, policy: MainDevicePolicy) -> SimStats {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            nt,
            nt,
            policy,
            DistributionStrategy::GuideArray,
            force_p,
        );
        simulate_fast(&p, &plan, nt, nt)
    }

    #[test]
    fn makespan_grows_with_size() {
        let a = run(20, Some(4), MainDevicePolicy::Auto).makespan_us;
        let b = run(40, Some(4), MainDevicePolicy::Auto).makespan_us;
        let c = run(80, Some(4), MainDevicePolicy::Auto).makespan_us;
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn comm_fraction_decreases_with_size() {
        // Fig. 5: >small matrices spend a visibly larger share on
        // communication than large ones.
        let small = run(10, Some(4), MainDevicePolicy::Auto).comm_fraction();
        let large = run(240, Some(4), MainDevicePolicy::Auto).comm_fraction();
        assert!(
            small > 2.0 * large,
            "comm share must fall sharply: small={small:.4} large={large:.4}"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn single_device_never_communicates() {
        let s = run(30, Some(1), MainDevicePolicy::Auto);
        assert_eq!(s.bus_busy_us, 0.0);
        assert_eq!(s.bytes_transferred, 0);
    }

    #[test]
    fn three_gpus_beat_one_on_large_matrices() {
        // Fig. 6a / Fig. 8: more devices win once the matrix is large.
        let one = run(500, Some(1), MainDevicePolicy::Auto).makespan_us;
        let three = run(500, Some(3), MainDevicePolicy::Auto).makespan_us;
        assert!(three < one, "3 GPUs {three} !< 1 GPU {one}");
    }

    #[test]
    fn one_gpu_wins_on_tiny_matrices() {
        // Fig. 6b / Table III: transfer setup costs make one device best
        // when the matrix is small.
        let one = run(6, Some(1), MainDevicePolicy::Auto).makespan_us;
        let three = run(6, Some(3), MainDevicePolicy::Auto).makespan_us;
        assert!(one < three, "1 GPU {one} !< 3 GPUs {three}");
    }

    #[test]
    fn cpu_as_main_is_catastrophic() {
        // Fig. 9: the CPU-as-main curve sits far above everything else.
        let auto = run(200, None, MainDevicePolicy::Auto).makespan_us;
        let cpu = run(200, None, MainDevicePolicy::Fixed(3)).makespan_us;
        assert!(cpu > 3.0 * auto, "cpu {cpu} vs auto {auto}");
    }

    #[test]
    fn gtx580_main_beats_gtx680_main() {
        // Fig. 9: the paper's selection (GTX580) beats using a GTX680.
        let d580 = run(600, None, MainDevicePolicy::Fixed(0)).makespan_us;
        let d680 = run(600, None, MainDevicePolicy::Fixed(1)).makespan_us;
        // Margin compressed in our calibration; near-parity or better.
        assert!(d580 <= d680 * 1.05, "580-main {d580} !<= ~680-main {d680}");
    }

    #[test]
    fn deterministic() {
        let a = run(50, Some(3), MainDevicePolicy::Auto);
        let b = run(50, Some(3), MainDevicePolicy::Auto);
        assert_eq!(a, b);
    }

    #[test]
    fn busy_time_matches_task_counts() {
        let s = run(30, Some(4), MainDevicePolicy::Auto);
        let total_tasks: u64 = s.tasks_per_device.iter().sum();
        // Exact TS kernel count: sum over panels of M + M*(cols right).
        let nt = 30u64;
        let expect: u64 = (0..nt).map(|k| (nt - k) + (nt - k) * (nt - k - 1)).sum();
        assert_eq!(total_tasks, expect);
        assert!(s.total_compute_us() > 0.0);
    }

    #[test]
    fn wide_and_tall_grids_supported() {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            40,
            10,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(3),
        );
        let tall = simulate_fast(&p, &plan, 40, 10);
        assert!(tall.makespan_us > 0.0);
        let plan_w = plan_with(
            &p,
            10,
            40,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(3),
        );
        let wide = simulate_fast(&p, &plan_w, 10, 40);
        assert!(wide.makespan_us > 0.0);
    }
}
