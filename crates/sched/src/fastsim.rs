//! Fast pipelined simulator at column-chain granularity.
//!
//! The exact task-level simulator (`tileqr_sim::engine`) materializes every
//! kernel invocation; at the paper's largest size (16 000² at tile 16 →
//! a 1000×1000 tile grid) that is ~3.3·10⁸ tasks, far past what fits in
//! memory. This simulator exploits the regular structure of the TS tiled-QR
//! DAG to run in `O(nt²)` time instead:
//!
//! * a panel's T/E work is one *chain* whose links complete at a steady
//!   `step` rate (each `TSQRT` depends on the previous one),
//! * a column's update work per panel is likewise a chain (each `TSMQR`
//!   rewrites the pivot-row tile),
//! * chains of consecutive panels *pipeline*: each column carries a
//!   `(head, step)` pair — when its first row-block is ready and the rate
//!   at which the following rows become ready — so panel `k+1` starts as
//!   soon as the head of column `k+1`'s update is done, exactly like the
//!   lookahead execution of the real runtime,
//! * devices expose `slots` parallel chain lanes; the PCIe bus serializes
//!   the per-panel factor broadcasts and next-column moves as batched
//!   transfers (Eq. 11 payloads).
//!
//! Integration tests validate it against the exact simulator on grids
//! where both run.

use crate::plan::{HeteroPlan, MainDevicePolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tileqr_sim::{KernelClass, Platform, SimStats};

/// Total-ordering wrapper so `f64` times can live in a heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Time(f64);
impl Eq for Time {}
impl PartialOrd for Time {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Time {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Per-device lane pool: the earliest-available of `slots` chain lanes.
struct Lanes {
    heap: BinaryHeap<Reverse<Time>>,
}

impl Lanes {
    fn new(slots: usize) -> Self {
        let mut heap = BinaryHeap::with_capacity(slots);
        for _ in 0..slots {
            heap.push(Reverse(Time(0.0)));
        }
        Lanes { heap }
    }

    /// Occupy the earliest lane from `max(lane, ready)` for `dur`; returns
    /// the start time.
    fn occupy(&mut self, ready: f64, dur: f64) -> f64 {
        let Reverse(Time(lane)) = self.heap.pop().expect("at least one lane");
        let start = lane.max(ready);
        self.heap.push(Reverse(Time(start + dur)));
        start
    }
}

/// Simulate a full tiled QR of an `mt x nt` tile grid under `plan`.
pub fn simulate_fast(platform: &Platform, plan: &HeteroPlan, mt: usize, nt: usize) -> SimStats {
    assert!(mt > 0 && nt > 0);
    let b = platform.config().tile_size;
    let tile_bytes = platform.config().tile_bytes();
    let ndev = platform.num_devices();

    let t_t: Vec<f64> = (0..ndev)
        .map(|d| {
            platform
                .device(d)
                .kernel_time_us(KernelClass::Triangulation, b)
        })
        .collect();
    let t_e: Vec<f64> = (0..ndev)
        .map(|d| {
            platform
                .device(d)
                .kernel_time_us(KernelClass::Elimination, b)
        })
        .collect();
    let t_u: Vec<f64> = (0..ndev)
        .map(|d| platform.device(d).kernel_time_us(KernelClass::Update, b))
        .collect();

    let mut lanes: Vec<Lanes> = (0..ndev)
        .map(|d| Lanes::new(platform.device(d).slots(b)))
        .collect();

    let dist = &plan.distribution;
    let owner: Vec<usize> = (0..nt).map(|j| dist.owner(j)).collect();

    // Per-column pipeline state: when the first row-block of the column is
    // up to date (head) and when its last row is (full). A consumer chain
    // may start at `head` and must end no earlier than `full` plus one of
    // its own links — the two endpoint constraints that bound any
    // link-level schedule of the chain.
    let mut head = vec![0.0f64; nt];
    let mut full = vec![0.0f64; nt];

    let mut stats = SimStats::new(ndev);
    let mut bus_free = 0.0f64;
    let per_tile_wire = tile_bytes as f64 / platform.link().bandwidth_bytes_per_us;
    let batch_lat = platform.link().batch_latency_us;

    let kmax = mt.min(nt);
    for k in 0..kmax {
        let m = mt - k; // tiles in the panel column
        let te_dev = match plan.policy {
            MainDevicePolicy::None => owner[k],
            _ => plan.main,
        };

        // Bring the panel column to the T/E device (chunked batched copy:
        // one setup, then tiles stream at wire rate).
        let (mut in_head, mut in_full) = (head[k], full[k]);
        if owner[k] != te_dev {
            let t0 = bus_free.max(in_head);
            let occupancy = batch_lat + m as f64 * per_tile_wire;
            bus_free = t0 + occupancy;
            stats.bus_busy_us += occupancy;
            stats.bytes_transferred += m as u64 * tile_bytes;
            stats.transfer_count += 1;
            in_head = t0 + batch_lat + per_tile_wire;
            in_full = in_full.max(t0 + occupancy);
        }

        // T/E chain on the T/E device: starts when the column head is
        // there, finishes no earlier than its own serial chain and no
        // earlier than the column's last row plus one elimination.
        let chain = t_t[te_dev] + (m - 1) as f64 * t_e[te_dev];
        let te_start = lanes[te_dev].occupy(in_head, chain);
        let te_head = te_start + t_t[te_dev] + if m > 1 { t_e[te_dev] } else { 0.0 };
        let te_full = (te_start + chain).max(in_full + t_e[te_dev]);
        stats.device_busy_us[te_dev] += chain;
        stats.tasks_per_device[te_dev] += m as u64;
        head[k] = te_start + t_t[te_dev];
        full[k] = te_full;

        // Broadcast the Q data (Eq. 11: 3MT² elements) to every other
        // device that owns trailing columns. `factor_head` is when a
        // device sees the panel's first V+T block, `factor_full` when it
        // has the last one.
        let mut factor_head = vec![f64::INFINITY; ndev];
        let mut factor_full = vec![f64::INFINITY; ndev];
        factor_head[te_dev] = te_head;
        factor_full[te_dev] = te_full;
        let mut needs: Vec<bool> = vec![false; ndev];
        for &o in owner.iter().take(nt).skip(k + 1) {
            needs[o] = true;
        }
        for d in 0..ndev {
            if d == te_dev || !needs[d] {
                continue;
            }
            let t0 = bus_free.max(te_head);
            let payload = 3 * m as u64 * tile_bytes;
            let occupancy = batch_lat + payload as f64 / platform.link().bandwidth_bytes_per_us;
            bus_free = t0 + occupancy;
            stats.bus_busy_us += occupancy;
            stats.bytes_transferred += payload;
            stats.transfer_count += 1;
            // The first V+T block lands after the setup; the last when the
            // stream drains and the chain has produced it.
            factor_head[d] = t0 + batch_lat + 2.0 * per_tile_wire;
            factor_full[d] = (t0 + occupancy).max(te_full + 2.0 * per_tile_wire);
        }

        // Update chains, next panel's column first. A chain occupies a
        // lane for its own work; its completion is additionally floored by
        // (a) the previous chain on the same column finishing its last
        // row, and (b) the last factor arriving — endpoint constraints
        // that bound any link-level schedule without ratcheting the
        // device's throughput.
        for j in k + 1..nt {
            let d = owner[j];
            let links = m as f64; // 1 UNMQR + (m-1) TSMQRs
            let own_dur = links * t_u[d];
            let ready = head[j].max(factor_head[d]);
            let start = lanes[d].occupy(ready, own_dur);
            let own_full = start + own_dur;
            full[j] = own_full.max(full[j] + t_u[d]).max(factor_full[d] + t_u[d]);
            head[j] = start.max(factor_head[d]) + 2.0 * t_u[d];
            stats.device_busy_us[d] += own_dur;
            stats.tasks_per_device[d] += m as u64;
        }
    }

    stats.makespan_us = full.iter().cloned().fold(0.0, f64::max);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use crate::plan::plan_with;
    use tileqr_sim::profiles;

    fn run(nt: usize, force_p: Option<usize>, policy: MainDevicePolicy) -> SimStats {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            nt,
            nt,
            policy,
            DistributionStrategy::GuideArray,
            force_p,
        );
        simulate_fast(&p, &plan, nt, nt)
    }

    #[test]
    fn makespan_grows_with_size() {
        let a = run(20, Some(4), MainDevicePolicy::Auto).makespan_us;
        let b = run(40, Some(4), MainDevicePolicy::Auto).makespan_us;
        let c = run(80, Some(4), MainDevicePolicy::Auto).makespan_us;
        assert!(a < b && b < c, "{a} {b} {c}");
    }

    #[test]
    fn comm_fraction_decreases_with_size() {
        // Fig. 5: >small matrices spend a visibly larger share on
        // communication than large ones.
        let small = run(10, Some(4), MainDevicePolicy::Auto).comm_fraction();
        let large = run(240, Some(4), MainDevicePolicy::Auto).comm_fraction();
        assert!(
            small > 2.0 * large,
            "comm share must fall sharply: small={small:.4} large={large:.4}"
        );
        assert!(small > 0.0);
    }

    #[test]
    fn single_device_never_communicates() {
        let s = run(30, Some(1), MainDevicePolicy::Auto);
        assert_eq!(s.bus_busy_us, 0.0);
        assert_eq!(s.bytes_transferred, 0);
    }

    #[test]
    fn three_gpus_beat_one_on_large_matrices() {
        // Fig. 6a / Fig. 8: more devices win once the matrix is large.
        let one = run(500, Some(1), MainDevicePolicy::Auto).makespan_us;
        let three = run(500, Some(3), MainDevicePolicy::Auto).makespan_us;
        assert!(three < one, "3 GPUs {three} !< 1 GPU {one}");
    }

    #[test]
    fn one_gpu_wins_on_tiny_matrices() {
        // Fig. 6b / Table III: transfer setup costs make one device best
        // when the matrix is small.
        let one = run(6, Some(1), MainDevicePolicy::Auto).makespan_us;
        let three = run(6, Some(3), MainDevicePolicy::Auto).makespan_us;
        assert!(one < three, "1 GPU {one} !< 3 GPUs {three}");
    }

    #[test]
    fn cpu_as_main_is_catastrophic() {
        // Fig. 9: the CPU-as-main curve sits far above everything else.
        let auto = run(200, None, MainDevicePolicy::Auto).makespan_us;
        let cpu = run(200, None, MainDevicePolicy::Fixed(3)).makespan_us;
        assert!(cpu > 3.0 * auto, "cpu {cpu} vs auto {auto}");
    }

    #[test]
    fn gtx580_main_beats_gtx680_main() {
        // Fig. 9: the paper's selection (GTX580) beats using a GTX680.
        let d580 = run(600, None, MainDevicePolicy::Fixed(0)).makespan_us;
        let d680 = run(600, None, MainDevicePolicy::Fixed(1)).makespan_us;
        // Margin compressed in our calibration; near-parity or better.
        assert!(d580 <= d680 * 1.05, "580-main {d580} !<= ~680-main {d680}");
    }

    #[test]
    fn deterministic() {
        let a = run(50, Some(3), MainDevicePolicy::Auto);
        let b = run(50, Some(3), MainDevicePolicy::Auto);
        assert_eq!(a, b);
    }

    #[test]
    fn busy_time_matches_task_counts() {
        let s = run(30, Some(4), MainDevicePolicy::Auto);
        let total_tasks: u64 = s.tasks_per_device.iter().sum();
        // Exact TS kernel count: sum over panels of M + M*(cols right).
        let nt = 30u64;
        let expect: u64 = (0..nt).map(|k| (nt - k) + (nt - k) * (nt - k - 1)).sum();
        assert_eq!(total_tasks, expect);
        assert!(s.total_compute_us() > 0.0);
    }

    #[test]
    fn wide_and_tall_grids_supported() {
        let p = profiles::paper_testbed(16);
        let plan = plan_with(
            &p,
            40,
            10,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(3),
        );
        let tall = simulate_fast(&p, &plan, 40, 10);
        assert!(tall.makespan_us > 0.0);
        let plan_w = plan_with(
            &p,
            10,
            40,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            Some(3),
        );
        let wide = simulate_fast(&p, &plan_w, 10, 40);
        assert!(wide.makespan_us > 0.0);
    }
}
