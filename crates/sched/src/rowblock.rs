//! Row-block distribution — the Communication-Avoiding QR baseline from
//! the paper's related work ([12, 13]).
//!
//! CAQR-style schedulers "divide the matrix row by row and the group row
//! tiles are distributed into a single cluster" (§VII). Each device owns a
//! contiguous band of tile rows; every kernel executes where its row
//! lives, and eliminations across bands use the TT tree kernels. The paper
//! argues column distribution suits a single shared-bus node better; this
//! module provides the row-block assignment so the claim can be measured
//! (see `tests/scheduler_pipeline.rs`).

use tileqr_dag::{TaskGraph, TaskKind};
use tileqr_sim::DeviceId;

/// Owner of tile row `i` when `mt` rows are split into `ndev` contiguous
/// bands (earlier devices get the extra rows when it does not divide).
pub fn row_owner(i: usize, mt: usize, ndev: usize) -> DeviceId {
    assert!(ndev > 0 && i < mt);
    (i * ndev) / mt
}

/// Assign every task of `g` by row ownership:
///
/// * `GEQRT(i, k)` and row updates `UNMQR(i, j, k)` run on `owner(i)`,
/// * eliminations `TSQRT`/`TTQRT(p, i, k)` and their updates run on the
///   *eliminated* row's owner (`owner(i)`) — the merge target pulls the
///   pivot row across, which is where CAQR pays its communication.
pub fn assign_rowblocks(g: &TaskGraph, mt: usize, ndev: usize) -> Vec<DeviceId> {
    g.tasks()
        .iter()
        .map(|t| match *t {
            TaskKind::Geqrt { i, .. } | TaskKind::Unmqr { i, .. } => row_owner(i, mt, ndev),
            TaskKind::Tsqrt { i, .. }
            | TaskKind::Ttqrt { i, .. }
            | TaskKind::Tsmqr { i, .. }
            | TaskKind::Ttmqr { i, .. } => row_owner(i, mt, ndev),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;
    use tileqr_sim::{engine, profiles};

    #[test]
    fn bands_are_contiguous_and_balanced() {
        let mt = 10;
        let ndev = 3;
        let owners: Vec<_> = (0..mt).map(|i| row_owner(i, mt, ndev)).collect();
        // Non-decreasing, covers all devices.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(owners[0], 0);
        assert_eq!(*owners.last().unwrap(), ndev - 1);
        for d in 0..ndev {
            let cnt = owners.iter().filter(|&&o| o == d).count();
            assert!((3..=4).contains(&cnt), "band {d} holds {cnt} rows");
        }
    }

    #[test]
    fn assignment_covers_all_devices() {
        let g = TaskGraph::build(12, 12, EliminationOrder::BinaryTt);
        let a = assign_rowblocks(&g, 12, 4);
        assert_eq!(a.len(), g.len());
        for d in 0..4 {
            assert!(a.contains(&d), "device {d} got no work");
        }
    }

    #[test]
    fn rowblock_runs_on_the_simulator() {
        let p = profiles::testbed_subset(3, false, 16);
        for order in [EliminationOrder::FlatTs, EliminationOrder::BinaryTt] {
            let g = TaskGraph::build(24, 24, order);
            let a = assign_rowblocks(&g, 24, p.num_devices());
            let stats = engine::simulate(&g, &p, &a);
            assert!(stats.makespan_us > 0.0);
            assert!(stats.transfer_count > 0, "cross-band merges must talk");
        }
    }

    #[test]
    fn tree_elimination_shortens_rowblock_critical_path() {
        // CAQR's point: with row-block ownership, tree elimination has a
        // logarithmic-depth merge instead of a linear chain. The weighted
        // critical path must shrink. (The TT orders trade this for more
        // kernel launches, so raw simulated makespan can still favour the
        // chain on a single node — exactly the paper's §VII argument for
        // its column distribution.)
        // Tall-and-skinny is CAQR's home turf: a 64-row, 2-column grid.
        let p = profiles::testbed_subset(3, false, 16);
        let mt = 64;
        let weight = |t: tileqr_dag::TaskKind| p.task_time_us(0, t);
        let flat_cp = tileqr_dag::critical_path::critical_path_length(
            &TaskGraph::build(mt, 2, EliminationOrder::FlatTs),
            weight,
        );
        let tree_cp = tileqr_dag::critical_path::critical_path_length(
            &TaskGraph::build(mt, 2, EliminationOrder::BinaryTt),
            weight,
        );
        assert!(tree_cp < flat_cp, "tree CP {tree_cp} !< flat CP {flat_cp}");
    }

    #[test]
    fn paper_column_distribution_beats_rowblocks_on_one_node() {
        // §VII: "in our work, we use a column by column tile distribution
        // … since there is not much communication cost for our system" —
        // on the shared-bus single node, the paper's column scheme must
        // not lose to the CAQR-style row bands.
        let p = profiles::testbed_subset(3, false, 16);
        let nt = 24;
        let g = TaskGraph::build(nt, nt, EliminationOrder::FlatTs);
        let row = engine::simulate(&g, &p, &assign_rowblocks(&g, nt, 3));
        let hp = crate::plan::plan_with(
            &p,
            nt,
            nt,
            crate::plan::MainDevicePolicy::Fixed(0),
            crate::distribution::DistributionStrategy::GuideArray,
            Some(3),
        );
        let col = engine::simulate(
            &g,
            &p,
            &crate::assign::assign_tasks(&g, &hp.distribution, hp.policy),
        );
        assert!(
            col.makespan_us <= row.makespan_us * 1.05,
            "column {} should not lose to row-block {}",
            col.makespan_us,
            row.makespan_us
        );
    }
}
