//! Main computing device selection (paper Alg. 2).
//!
//! The main computing device executes every triangulation (T) and
//! elimination (E) kernel. Algorithm 2 first collects *candidates* — the
//! devices able to finish the panel's T/E work before the remaining
//! devices finish the panel's updates — then, among the candidates, picks
//! the one with the **minimum update speed**, "because non-minimum speed
//! devices are better to be used to do update processes".
//!
//! On the paper's testbed this selects the GTX580: the CPU fails the
//! candidate test (its T/E kernels are ~6× slower with only 4-way
//! parallelism), and among the GPUs the GTX580 has the lowest update
//! throughput, so the wider GTX680s are kept on update duty (§VI-B).

use tileqr_sim::{DeviceId, Platform};

/// Result of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub struct MainSelection {
    /// The selected main computing device.
    pub device: DeviceId,
    /// Devices that passed the `can_finish_T_before_UE` /
    /// `can_finish_E_before_UT` test (empty when the fallback fired).
    pub candidates: Vec<DeviceId>,
    /// Per-device T/E occupancy time for the first panel, microseconds
    /// (diagnostic, used by the experiment harness).
    pub te_time_us: Vec<f64>,
}

/// Serial latency of the first panel's T/E chain on device `i`,
/// microseconds. The eliminations of one panel form a dependency chain
/// (each `TSQRT` reuses the pivot tile), so no amount of device
/// parallelism shortens it — this is the paper's
/// `can_finish_T_before_UE` / `can_finish_E_before_UT` quantity.
fn te_chain_us(platform: &Platform, dev: DeviceId, mt: usize) -> f64 {
    let b = platform.config().tile_size;
    let d = platform.device(dev);
    let t = d.kernel_time_us(tileqr_sim::KernelClass::Triangulation, b);
    let e = d.kernel_time_us(tileqr_sim::KernelClass::Elimination, b);
    t + (mt.saturating_sub(1)) as f64 * e
}

/// Update-phase time of the first panel if every non-excluded device
/// *except* `dev` shares the `M(N−1)` update tiles in proportion to
/// throughput.
fn update_time_without_us(
    platform: &Platform,
    dev: DeviceId,
    mt: usize,
    nt: usize,
    excluded: &[bool],
) -> f64 {
    let b = platform.config().tile_size;
    let tiles = (mt * nt.saturating_sub(1)) as f64;
    let throughput: f64 = (0..platform.num_devices())
        .filter(|&d| d != dev && !excluded[d])
        .map(|d| platform.device(d).update_throughput(b))
        .sum();
    if throughput == 0.0 {
        f64::INFINITY
    } else {
        tiles / throughput
    }
}

/// Run Algorithm 2 over every device of `platform` for an `mt x nt` tile
/// grid.
pub fn select_main_device(platform: &Platform, mt: usize, nt: usize) -> MainSelection {
    select_main_device_excluding(platform, mt, nt, &[])
}

/// [`select_main_device`] with a device blacklist — the re-planning path:
/// after a mid-run device death, Algorithm 2 is re-run over the survivors
/// only. `te_time_us` still covers every device (diagnostics), but
/// excluded devices can neither be candidates nor win the fallback.
/// Panics if exclusion leaves no device.
pub fn select_main_device_excluding(
    platform: &Platform,
    mt: usize,
    nt: usize,
    exclude: &[DeviceId],
) -> MainSelection {
    assert!(mt > 0 && nt > 0);
    let n = platform.num_devices();
    let mut excluded = vec![false; n];
    for &d in exclude {
        assert!(d < n, "unknown excluded device {d}");
        excluded[d] = true;
    }
    let eligible: Vec<DeviceId> = (0..n).filter(|&d| !excluded[d]).collect();
    assert!(
        !eligible.is_empty(),
        "exclusion left no device to plan with"
    );
    let te_time_us: Vec<f64> = (0..n).map(|d| te_chain_us(platform, d, mt)).collect();

    if eligible.len() == 1 {
        return MainSelection {
            device: eligible[0],
            candidates: eligible,
            te_time_us,
        };
    }

    let candidates: Vec<DeviceId> = eligible
        .iter()
        .copied()
        .filter(|&d| te_time_us[d] <= update_time_without_us(platform, d, mt, nt, &excluded))
        .collect();

    let b = platform.config().tile_size;
    let device = if candidates.is_empty() {
        // Fallback: no device keeps up with the others' updates — take the
        // one with the fastest T/E chain.
        eligible
            .iter()
            .copied()
            .min_by(|&a, &c| te_time_us[a].total_cmp(&te_time_us[c]))
            .expect("non-empty eligible set")
    } else {
        // "find_minimum_speed_device_id": slowest *updater* among the
        // candidates, so the fast updaters stay on update duty.
        candidates
            .iter()
            .copied()
            .min_by(|&a, &c| {
                platform
                    .device(a)
                    .update_throughput(b)
                    .total_cmp(&platform.device(c).update_throughput(b))
            })
            .expect("non-empty candidates")
    };

    MainSelection {
        device,
        candidates,
        te_time_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn testbed_selects_gtx580_at_paper_sizes() {
        // §VI-B: "Therefore, our selection is GTX580" (device 0).
        let p = profiles::paper_testbed(16);
        for size in [3200usize, 6400, 9600, 12800, 16000] {
            let nt = size / 16;
            let sel = select_main_device(&p, nt, nt);
            assert_eq!(sel.device, 0, "size {size}: {sel:?}");
        }
    }

    #[test]
    fn cpu_never_main_when_gpus_exist() {
        let p = profiles::paper_testbed(16);
        for nt in [5, 10, 50, 100, 400, 1000] {
            let sel = select_main_device(&p, nt, nt);
            assert_ne!(sel.device, 3, "CPU selected at nt={nt}");
        }
    }

    #[test]
    fn gpus_are_candidates_on_update_bound_grids() {
        // The candidate test fires once the update phase is long enough to
        // hide the T/E chain. On the calibrated testbed that takes a very
        // wide grid; the mechanism itself is what this test locks down.
        let p = profiles::paper_testbed(16);
        let sel = select_main_device(&p, 20_000, 20_000);
        assert!(sel.candidates.contains(&0));
        assert!(sel.candidates.contains(&1));
        assert!(!sel.candidates.contains(&3), "CPU cannot keep up");
        assert_eq!(sel.device, 0, "slowest updater among candidates");
    }

    #[test]
    fn single_device_platform() {
        let p = profiles::testbed_subset(1, false, 16);
        let sel = select_main_device(&p, 10, 10);
        assert_eq!(sel.device, 0);
    }

    #[test]
    fn cpu_only_platform_selects_cpu() {
        let p = profiles::testbed_subset(0, true, 16);
        let sel = select_main_device(&p, 10, 10);
        assert_eq!(sel.device, 0);
    }

    #[test]
    fn fallback_on_tiny_grids_picks_fastest_te() {
        // With a tiny panel no device passes the candidate test; the
        // fastest T/E pipeline (GTX580) must still be chosen.
        let p = profiles::paper_testbed(16);
        let sel = select_main_device(&p, 2, 2);
        assert_eq!(sel.device, 0);
    }

    #[test]
    fn excluding_the_winner_promotes_a_survivor() {
        let p = profiles::paper_testbed(16);
        let sel = select_main_device(&p, 400, 400);
        assert_eq!(sel.device, 0);
        let degraded = select_main_device_excluding(&p, 400, 400, &[0]);
        assert_ne!(degraded.device, 0, "dead device must not be re-selected");
        assert!(!degraded.candidates.contains(&0));
    }

    #[test]
    fn exclusion_down_to_one_device_selects_it() {
        let p = profiles::paper_testbed(16);
        let sel = select_main_device_excluding(&p, 50, 50, &[0, 1, 2]);
        assert_eq!(sel.device, 3, "only the CPU remains");
        assert_eq!(sel.candidates, vec![3]);
    }

    #[test]
    #[should_panic]
    fn excluding_everything_panics() {
        let p = profiles::testbed_subset(1, false, 16);
        let _ = select_main_device_excluding(&p, 10, 10, &[0]);
    }

    #[test]
    fn te_times_ordering() {
        let p = profiles::paper_testbed(16);
        let sel = select_main_device(&p, 100, 100);
        // Chain latency: GTX580 < GTX680 << CPU (Fig. 4 curve ordering).
        assert!(sel.te_time_us[0] < sel.te_time_us[1]);
        assert!(sel.te_time_us[1] < sel.te_time_us[3]);
    }
}
