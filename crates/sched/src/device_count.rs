//! Number-of-devices selection (paper Alg. 3, Eqs. 10–11).
//!
//! Devices are ordered by update speed (descending) with the main device
//! forced to the head of the list. For each prefix length `p`, the
//! predicted first-iteration time `T(p) = Top(p) + Tcomm(p)` is evaluated
//! and the minimizing `p` is chosen: "using all available devices will not
//! always give the best performance for some sizes of matrices" (§III-C).

use crate::distribution::{Distribution, DistributionStrategy};
use tileqr_sim::{DeviceId, KernelClass, Platform};

/// Prediction for one candidate device count.
#[derive(Debug, Clone, PartialEq)]
pub struct CountPrediction {
    /// Number of participating devices (prefix of the ordered list).
    pub p: usize,
    /// The devices in that prefix.
    pub devices: Vec<DeviceId>,
    /// Predicted operation time `Top(p)`, microseconds (Eq. 10).
    pub top_us: f64,
    /// Predicted communication time `Tcomm(p)`, microseconds (Eq. 11).
    pub tcomm_us: f64,
}

impl CountPrediction {
    /// `T(p) = Top(p) + Tcomm(p)`.
    pub fn total_us(&self) -> f64 {
        self.top_us + self.tcomm_us
    }
}

/// Result of Algorithm 3.
#[derive(Debug, Clone, PartialEq)]
pub struct CountSelection {
    /// The optimal number of devices.
    pub p: usize,
    /// The participating devices (ordered: main first, then by update
    /// speed descending).
    pub devices: Vec<DeviceId>,
    /// Predictions for every candidate `p` (index 0 holds `p = 1`).
    pub predictions: Vec<CountPrediction>,
}

/// Devices ordered for Algorithm 3: main first, the rest by update
/// throughput descending (ties by id for determinism).
pub fn ordered_devices(platform: &Platform, main: DeviceId) -> Vec<DeviceId> {
    ordered_devices_excluding(platform, main, &[])
}

/// [`ordered_devices`] with a device blacklist (the re-planning path).
/// `main` must not itself be excluded.
pub fn ordered_devices_excluding(
    platform: &Platform,
    main: DeviceId,
    exclude: &[DeviceId],
) -> Vec<DeviceId> {
    assert!(
        !exclude.contains(&main),
        "main device {main} is on the blacklist"
    );
    let b = platform.config().tile_size;
    let mut rest: Vec<DeviceId> = (0..platform.num_devices())
        .filter(|&d| d != main && !exclude.contains(&d))
        .collect();
    rest.sort_by(|&a, &c| {
        platform
            .device(c)
            .update_throughput(b)
            .total_cmp(&platform.device(a).update_throughput(b))
            .then(a.cmp(&c))
    });
    let mut out = vec![main];
    out.extend(rest);
    out
}

/// `Top(p)` of Eq. 10, extended from the paper's first iteration to the
/// whole run (the paper itself argues "the trend for whole iteration will
/// be similar to the first iteration" — summing panels makes the predictor
/// directly comparable to a measured makespan).
///
/// Per panel, the main device is charged its T/E chain (`#tile_m ×
/// (time_m(T) + time_m(E))`) and every participant its share of the
/// `M(N−1)` update-tile operations, at its slot-parallel effective rate.
/// `Top` is the worst per-device total — a resource lower bound that
/// accounts for the overlap of T/E with updates.
pub fn top_us(platform: &Platform, devices: &[DeviceId], mt: usize, nt: usize) -> f64 {
    let b = platform.config().tile_size;
    let main = devices[0];
    let dist = Distribution::build(platform, main, devices, DistributionStrategy::GuideArray);
    // Column shares translate ratio weights into tile counts.
    let total_cols: usize = devices
        .iter()
        .map(|&d| dist.guide().iter().filter(|&&g| g == d).count())
        .sum();
    let kmax = mt.min(nt);
    let mut worst = 0.0f64;
    for &d in devices {
        let dev = platform.device(d);
        let share = if total_cols == 0 {
            if d == main {
                1.0
            } else {
                0.0
            }
        } else {
            dist.guide().iter().filter(|&&g| g == d).count() as f64 / total_cols as f64
        };
        let t_u = dev.kernel_time_us(KernelClass::Update, b);
        let t_t = dev.kernel_time_us(KernelClass::Triangulation, b);
        let t_e = dev.kernel_time_us(KernelClass::Elimination, b);
        let mut lane_time = 0.0f64;
        for k in 0..kmax {
            let m = (mt - k) as f64;
            let cols_right = (nt - k - 1) as f64;
            // Each distributed column costs one UNMQR plus (M−1) TSMQRs —
            // the concrete realisation of Eq. 10's UT + UE charge.
            lane_time += share * cols_right * m * t_u;
            if d == main {
                lane_time += t_t + (m - 1.0) * t_e;
            }
        }
        worst = worst.max(lane_time / dev.slots(b) as f64);
    }
    worst
}

/// `Tcomm(p)` of Eq. 11, summed over all panels: per panel, `3MT²`
/// elements of Q data go from the main device to each of the other `p−1`
/// participants as one batched transfer each, and the `(M−1)T²`-element
/// next panel column comes back to the main device. The batched-transfer
/// setup latency, paid every panel per destination, is what makes few
/// devices optimal for small matrices (Table III).
pub fn tcomm_us(platform: &Platform, devices: &[DeviceId], mt: usize) -> f64 {
    tcomm_us_grid(platform, devices, mt, mt)
}

/// [`tcomm_us`] for a non-square `mt x nt` grid.
pub fn tcomm_us_grid(platform: &Platform, devices: &[DeviceId], mt: usize, nt: usize) -> f64 {
    if devices.len() < 2 {
        return 0.0; // speed(x, x) = ∞: a lone device never pays.
    }
    let cfg = platform.config();
    let kmax = mt.min(nt);
    let mut t = 0.0;
    for k in 0..kmax {
        let m = (mt - k) as u64;
        let q_bytes = 3 * m * cfg.tile_bytes();
        let col_bytes = m.saturating_sub(1) * cfg.tile_bytes();
        for &_d in &devices[1..] {
            t += platform.batch_transfer_time_us(q_bytes);
        }
        t += platform.batch_transfer_time_us(col_bytes);
    }
    t
}

/// Run Algorithm 3: choose the `p` (1 ≤ p ≤ #devices) minimizing
/// `Top(p) + Tcomm(p)`.
pub fn select_device_count(
    platform: &Platform,
    main: DeviceId,
    mt: usize,
    nt: usize,
) -> CountSelection {
    select_device_count_excluding(platform, main, mt, nt, &[])
}

/// [`select_device_count`] over the non-blacklisted devices only (the
/// re-planning path): prefixes are drawn from the surviving ordered list,
/// so a dead device can never be a participant.
pub fn select_device_count_excluding(
    platform: &Platform,
    main: DeviceId,
    mt: usize,
    nt: usize,
    exclude: &[DeviceId],
) -> CountSelection {
    let ordered = ordered_devices_excluding(platform, main, exclude);
    let mut predictions = Vec::with_capacity(ordered.len());
    for p in 1..=ordered.len() {
        let devices = ordered[..p].to_vec();
        let top = top_us(platform, &devices, mt, nt);
        let tcomm = tcomm_us_grid(platform, &devices, mt, nt);
        predictions.push(CountPrediction {
            p,
            devices,
            top_us: top,
            tcomm_us: tcomm,
        });
    }
    let best = predictions
        .iter()
        .min_by(|a, b| a.total_us().total_cmp(&b.total_us()))
        .expect("at least one device");
    CountSelection {
        p: best.p,
        devices: best.devices.clone(),
        predictions: predictions.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn ordering_puts_main_first_then_by_update_speed() {
        let p = profiles::paper_testbed(16);
        let ord = ordered_devices(&p, 0);
        assert_eq!(ord[0], 0, "main (GTX580) first");
        assert_eq!(&ord[1..3], &[1, 2], "GTX680s next");
        assert_eq!(ord[3], 3, "CPU last");
    }

    #[test]
    fn tcomm_grows_with_device_count() {
        let p = profiles::paper_testbed(16);
        let ord = ordered_devices(&p, 0);
        let t1 = tcomm_us(&p, &ord[..1], 100);
        let t2 = tcomm_us(&p, &ord[..2], 100);
        let t3 = tcomm_us(&p, &ord[..3], 100);
        assert_eq!(t1, 0.0, "single device never touches the bus");
        assert!(t2 > t1 && t3 > t2);
    }

    #[test]
    fn top_shrinks_with_device_count_at_large_sizes() {
        let p = profiles::paper_testbed(16);
        let ord = ordered_devices(&p, 0);
        let mt = 500;
        let t1 = top_us(&p, &ord[..1], mt, mt);
        let t2 = top_us(&p, &ord[..2], mt, mt);
        let t3 = top_us(&p, &ord[..3], mt, mt);
        assert!(t2 < t1, "adding a GTX680 must relieve the GTX580");
        assert!(t3 < t2);
    }

    #[test]
    fn small_matrices_use_fewer_devices_than_large() {
        // Table III: 1 GPU below ~480, 2 GPUs in the middle band, 3 GPUs
        // beyond ~2720. Exact crossovers depend on calibration; the
        // monotone trend is the invariant worth locking down.
        let gpus = profiles::testbed_subset(3, false, 16);
        let tiny = select_device_count(&gpus, 0, 160 / 16, 160 / 16);
        let huge = select_device_count(&gpus, 0, 4000 / 16, 4000 / 16);
        assert!(tiny.p <= huge.p);
        assert_eq!(huge.p, 3, "the largest size must use all GPUs");
        assert_eq!(tiny.p, 1, "the smallest size must use one GPU");
    }

    #[test]
    fn predictions_cover_all_prefixes() {
        let p = profiles::paper_testbed(16);
        let sel = select_device_count(&p, 0, 50, 50);
        assert_eq!(sel.predictions.len(), 4);
        for (i, pred) in sel.predictions.iter().enumerate() {
            assert_eq!(pred.p, i + 1);
            assert_eq!(pred.devices.len(), i + 1);
            assert_eq!(pred.devices[0], 0);
        }
        let chosen = &sel.predictions[sel.p - 1];
        for other in &sel.predictions {
            assert!(chosen.total_us() <= other.total_us() + 1e-9);
        }
    }

    #[test]
    fn exclusion_removes_devices_from_every_prefix() {
        let p = profiles::paper_testbed(16);
        let sel = select_device_count_excluding(&p, 0, 200, 200, &[1]);
        assert_eq!(sel.predictions.len(), 3, "one device blacklisted");
        for pred in &sel.predictions {
            assert!(!pred.devices.contains(&1));
        }
        assert!(!sel.devices.contains(&1));
    }

    #[test]
    fn exclusion_to_single_device_still_plans() {
        let p = profiles::paper_testbed(16);
        let sel = select_device_count_excluding(&p, 3, 20, 20, &[0, 1, 2]);
        assert_eq!(sel.p, 1);
        assert_eq!(sel.devices, vec![3]);
    }

    #[test]
    #[should_panic]
    fn excluded_main_panics() {
        let p = profiles::paper_testbed(16);
        let _ = ordered_devices_excluding(&p, 0, &[0]);
    }

    #[test]
    fn single_device_platform_selects_one() {
        let p = profiles::testbed_subset(1, false, 16);
        let sel = select_device_count(&p, 0, 20, 20);
        assert_eq!(sel.p, 1);
    }
}
