//! Lower a [`HeteroPlan`](crate::plan::HeteroPlan) onto a concrete task
//! graph: one device per task, for the exact simulator.

use crate::distribution::Distribution;
use crate::plan::MainDevicePolicy;
use tileqr_dag::TaskGraph;
use tileqr_sim::DeviceId;

/// Assign every task of `g` to a device following the paper's rules
/// (§IV-D):
///
/// * triangulation and elimination run on the main computing device — or,
///   under [`MainDevicePolicy::None`], on the owner of the panel column
///   (the "no specific main" baseline of Fig. 9),
/// * update kernels run on the owner of the column they write (Eq. 12).
pub fn assign_tasks(g: &TaskGraph, dist: &Distribution, policy: MainDevicePolicy) -> Vec<DeviceId> {
    g.tasks()
        .iter()
        .map(|t| {
            if t.class().is_main_device_work() {
                match policy {
                    MainDevicePolicy::None => dist.owner(t.panel()),
                    _ => dist.main(),
                }
            } else {
                dist.owner(t.home_column())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::DistributionStrategy;
    use tileqr_dag::{EliminationOrder, StepClass};
    use tileqr_sim::profiles;

    #[test]
    fn te_tasks_go_to_main() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2, 3], DistributionStrategy::GuideArray);
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let a = assign_tasks(&g, &d, MainDevicePolicy::Auto);
        for (task, &dev) in g.tasks().iter().zip(&a) {
            if task.class().is_main_device_work() {
                assert_eq!(dev, 0, "{task:?} not on main");
            }
        }
    }

    #[test]
    fn updates_follow_column_owner() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2, 3], DistributionStrategy::GuideArray);
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let a = assign_tasks(&g, &d, MainDevicePolicy::Auto);
        for (task, &dev) in g.tasks().iter().zip(&a) {
            if !task.class().is_main_device_work() {
                assert_eq!(dev, d.owner(task.home_column()), "{task:?}");
            }
        }
    }

    #[test]
    fn none_policy_uses_panel_owner() {
        let p = profiles::paper_testbed(16);
        let d = Distribution::build(&p, 0, &[0, 1, 2], DistributionStrategy::Even);
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let a = assign_tasks(&g, &d, MainDevicePolicy::None);
        for (task, &dev) in g.tasks().iter().zip(&a) {
            if matches!(
                task.class(),
                StepClass::Triangulation | StepClass::Elimination
            ) {
                assert_eq!(dev, d.owner(task.panel()), "{task:?}");
            }
        }
        // With even distribution over 3 devices, T/E work is actually
        // spread (not all on one device).
        let te_devs: std::collections::HashSet<_> = g
            .tasks()
            .iter()
            .zip(&a)
            .filter(|(t, _)| t.class().is_main_device_work())
            .map(|(_, &dv)| dv)
            .collect();
        assert!(te_devs.len() > 1);
    }
}
