//! Tile-size auto-tuning — the Song et al. (ICS'12) baseline from the
//! paper's related work (§VII).
//!
//! Song et al. first run a small probe problem to find the best tile size
//! for the system, then reuse it at full scale. The paper under
//! reproduction argues for a *fixed* tile size (16) with load balancing by
//! tile *count* instead; this module implements the probe-based tuner so
//! the two approaches can be compared (see the `ablation` experiments).

use crate::distribution::DistributionStrategy;
use crate::fastsim::simulate_fast;
use crate::plan::{plan_with, MainDevicePolicy};
use tileqr_sim::Platform;

/// Result of a tile-size probe sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning tile size.
    pub best_tile: usize,
    /// `(tile size, simulated seconds on the probe problem)` per candidate.
    pub probes: Vec<(usize, f64)>,
}

/// Probe every candidate tile size on an `n_probe`-sized problem and pick
/// the fastest. `make_platform` rebuilds the platform for a given tile
/// size (the kernel-time curves are functions of `b`, so the platform
/// config must change with it).
pub fn tune_tile_size(
    make_platform: impl Fn(usize) -> Platform,
    n_probe: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut probes = Vec::with_capacity(candidates.len());
    for &b in candidates {
        assert!(b > 0, "tile sizes must be positive");
        let platform = make_platform(b);
        let nt = n_probe.div_ceil(b).max(1);
        let plan = plan_with(
            &platform,
            nt,
            nt,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            None,
        );
        let stats = simulate_fast(&platform, &plan, nt, nt);
        probes.push((b, stats.makespan_s()));
    }
    let best_tile = probes
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
        .0;
    TuneResult { best_tile, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn picks_a_candidate() {
        let r = tune_tile_size(profiles::paper_testbed, 640, &[8, 16, 32]);
        assert!([8, 16, 32].contains(&r.best_tile));
        assert_eq!(r.probes.len(), 3);
        assert!(r.probes.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn single_candidate_is_trivial() {
        let r = tune_tile_size(profiles::paper_testbed, 320, &[16]);
        assert_eq!(r.best_tile, 16);
    }

    #[test]
    fn extreme_tiles_lose() {
        // Very small tiles drown in per-kernel overhead; very large tiles
        // kill parallelism. A mid-range size must win the probe.
        let r = tune_tile_size(profiles::paper_testbed, 1280, &[2, 16, 320]);
        assert_eq!(r.best_tile, 16, "{:?}", r.probes);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panic() {
        let _ = tune_tile_size(profiles::paper_testbed, 320, &[]);
    }
}
