//! Tile-size auto-tuning — the Song et al. (ICS'12) baseline from the
//! paper's related work (§VII).
//!
//! Song et al. first run a small probe problem to find the best tile size
//! for the system, then reuse it at full scale. The paper under
//! reproduction argues for a *fixed* tile size (16) with load balancing by
//! tile *count* instead; this module implements the probe-based tuner so
//! the two approaches can be compared (see the `ablation` experiments).

use crate::distribution::DistributionStrategy;
use crate::fastsim::simulate_fast;
use crate::plan::{plan_with, MainDevicePolicy};
use crate::select::select_plan;
use tileqr_sim::{DeviceProfile, Platform};

/// Result of a tile-size probe sweep.
#[derive(Debug, Clone)]
pub struct TuneResult {
    /// The winning tile size.
    pub best_tile: usize,
    /// `(tile size, simulated seconds on the probe problem)` per candidate.
    pub probes: Vec<(usize, f64)>,
}

/// The unified tuning path: sweep every candidate tile size on an
/// `n_probe x n_probe` probe problem through the geometry-aware plan
/// selector ([`select_plan`]) over a *calibrated* single-device profile,
/// and report the per-tile best predicted time (each tile's fastest
/// elimination tree). Returns the same [`TuneResult`] shape as the
/// legacy Song-style sweep, so existing consumers compare directly —
/// but the prediction now runs over measured kernel curves (e.g. fit by
/// `obs::calibrate` or the service-level online tuner) instead of the
/// hand-configured heterogeneous platform, and picks the tree jointly
/// with the tile size.
pub fn tune_plan(profile: &DeviceProfile, n_probe: usize, candidates: &[usize]) -> TuneResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let selection = select_plan(profile, n_probe, n_probe, candidates);
    let probes: Vec<(usize, f64)> = candidates
        .iter()
        .map(|&b| {
            let best_us = selection
                .ranked
                .iter()
                .filter(|s| s.tile_size == b)
                .map(|s| s.makespan_us)
                .fold(f64::INFINITY, f64::min);
            (b, best_us / 1e6)
        })
        .collect();
    TuneResult {
        best_tile: selection.best.tile_size,
        probes,
    }
}

/// Probe every candidate tile size on an `n_probe`-sized problem and pick
/// the fastest. `make_platform` rebuilds the platform for a given tile
/// size (the kernel-time curves are functions of `b`, so the platform
/// config must change with it).
#[deprecated(
    since = "0.1.0",
    note = "superseded by `tune_plan`, which sweeps the same candidates through the \
            calibrated plan selector (`select::select_plan`) and tunes the elimination \
            tree jointly; kept as the Song et al. baseline for the ablation"
)]
pub fn tune_tile_size(
    make_platform: impl Fn(usize) -> Platform,
    n_probe: usize,
    candidates: &[usize],
) -> TuneResult {
    assert!(!candidates.is_empty(), "need at least one candidate");
    let mut probes = Vec::with_capacity(candidates.len());
    for &b in candidates {
        assert!(b > 0, "tile sizes must be positive");
        let platform = make_platform(b);
        let nt = n_probe.div_ceil(b).max(1);
        let plan = plan_with(
            &platform,
            nt,
            nt,
            MainDevicePolicy::Auto,
            DistributionStrategy::GuideArray,
            None,
        );
        let stats = simulate_fast(&platform, &plan, nt, nt);
        probes.push((b, stats.makespan_s()));
    }
    let best_tile = probes
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty")
        .0;
    TuneResult { best_tile, probes }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use tileqr_sim::profiles;

    #[test]
    fn unified_tuner_matches_selector_winner() {
        let p = profiles::paper_testbed(16).device(0).clone();
        let r = tune_plan(&p, 640, &[8, 16, 32]);
        assert!([8, 16, 32].contains(&r.best_tile));
        assert_eq!(r.probes.len(), 3);
        assert!(r.probes.iter().all(|&(_, t)| t.is_finite() && t > 0.0));
        // The winner's probe time is the sweep minimum.
        let best = r.probes.iter().find(|&&(b, _)| b == r.best_tile).unwrap().1;
        assert!(r.probes.iter().all(|&(_, t)| best <= t));
        // Agrees with the selector it wraps.
        let sel = select_plan(&p, 640, 640, &[8, 16, 32]);
        assert_eq!(r.best_tile, sel.best.tile_size);
    }

    #[test]
    #[should_panic]
    fn unified_tuner_rejects_empty_candidates() {
        let p = profiles::paper_testbed(16).device(0).clone();
        let _ = tune_plan(&p, 320, &[]);
    }

    #[test]
    fn picks_a_candidate() {
        let r = tune_tile_size(profiles::paper_testbed, 640, &[8, 16, 32]);
        assert!([8, 16, 32].contains(&r.best_tile));
        assert_eq!(r.probes.len(), 3);
        assert!(r.probes.iter().all(|&(_, t)| t > 0.0));
    }

    #[test]
    fn single_candidate_is_trivial() {
        let r = tune_tile_size(profiles::paper_testbed, 320, &[16]);
        assert_eq!(r.best_tile, 16);
    }

    #[test]
    fn extreme_tiles_lose() {
        // Very small tiles drown in per-kernel overhead; very large tiles
        // kill parallelism. A mid-range size must win the probe.
        let r = tune_tile_size(profiles::paper_testbed, 1280, &[2, 16, 320]);
        assert_eq!(r.best_tile, 16, "{:?}", r.probes);
    }

    #[test]
    #[should_panic]
    fn empty_candidates_panic() {
        let _ = tune_tile_size(profiles::paper_testbed, 320, &[]);
    }
}
