//! Fault-tolerance policy and deterministic fault injection for the pool.
//!
//! [`FaultTolerance`] bounds how hard the manager fights to finish a run:
//! at most `max_attempts` executions per task, separated by deterministic
//! exponential backoff, with an optional stall watchdog that retires a
//! worker whose in-flight task exceeds `stall_timeout`. Recovery is only
//! *safe* because the fault-tolerant pool stages non-destructively and
//! commits exactly once on the manager side (see `DESIGN.md` §11) — a
//! requeued task always re-reads clean inputs and a late duplicate result
//! is dropped at the commit fence.
//!
//! [`FaultInjector`] is the test seam: the pool consults it before every
//! attempt, so suites can script panics, transient kernel failures, and
//! stalls at exact (task, attempt) coordinates and replay them
//! deterministically.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;
use tileqr_dag::TaskId;

/// Bounds on the pool's recovery behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultTolerance {
    /// Maximum executions per task (first try included). Must be ≥ 1; the
    /// run fails with `RetriesExhausted` when a task burns them all.
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is `backoff_base · 2^(n-1)`,
    /// capped at [`backoff_cap`](Self::backoff_cap). Deterministic — no
    /// jitter — so failure schedules replay exactly.
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay.
    pub backoff_cap: Duration,
    /// Watchdog: a worker whose in-flight task exceeds this age is
    /// retired and the task requeued. `None` disables the watchdog
    /// (panics and kernel errors are still recovered).
    pub stall_timeout: Option<Duration>,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(64),
            stall_timeout: None,
        }
    }
}

impl FaultTolerance {
    /// Delay before scheduling retry number `retry` (1-based: the first
    /// retry is `backoff(1)` after the first failure).
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(20);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }
}

/// What an injector asks an attempt to do instead of (or before) running
/// the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// Run normally.
    None,
    /// Panic inside the worker (exercises `catch_unwind` + retirement).
    Panic,
    /// Return a transient kernel error without touching shared state.
    TransientError,
    /// Sleep this long before running normally (exercises the watchdog).
    Stall(Duration),
    /// Run the kernel normally, then overwrite part of its output with
    /// NaN before it is reported (exercises commit-fence poison
    /// detection — the corruption must fail only the victim job).
    PoisonNan,
}

/// Test seam consulted by the pool before every task attempt.
///
/// Implementations must be deterministic functions of `(task, attempt)`
/// for runs to replay; the built-in [`ScriptedFaults`] is.
pub trait FaultInjector: Sync {
    /// Fault to apply to attempt `attempt` (0-based) of `task`.
    fn before_attempt(&self, task: TaskId, attempt: u32) -> InjectedFault;
}

/// The no-op injector.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn before_attempt(&self, _task: TaskId, _attempt: u32) -> InjectedFault {
        InjectedFault::None
    }
}

/// Deterministic scripted injector: each task maps to a number of leading
/// attempts that panic, fail transiently, or stall. Attempt indices past
/// the scripted count run clean, so a bounded-retry pool always converges
/// when the script injects fewer faults than `max_attempts`.
#[derive(Debug, Default)]
pub struct ScriptedFaults {
    panics: HashMap<TaskId, u32>,
    transients: HashMap<TaskId, u32>,
    stalls: HashMap<TaskId, (u32, Duration)>,
    poisons: HashMap<TaskId, u32>,
    /// Observed (task, attempt) pairs, for asserting injection coverage.
    seen: Mutex<Vec<(TaskId, u32)>>,
}

impl ScriptedFaults {
    /// Empty script (equivalent to [`NoFaults`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Panic on the first `count` attempts of `task`.
    pub fn panic_on(mut self, task: TaskId, count: u32) -> Self {
        self.panics.insert(task, count);
        self
    }

    /// Return a transient kernel error on the first `count` attempts of
    /// `task`.
    pub fn fail_on(mut self, task: TaskId, count: u32) -> Self {
        self.transients.insert(task, count);
        self
    }

    /// Stall for `delay` on the first `count` attempts of `task`.
    pub fn stall_on(mut self, task: TaskId, count: u32, delay: Duration) -> Self {
        self.stalls.insert(task, (count, delay));
        self
    }

    /// Poison (NaN-corrupt) the output of the first `count` attempts of
    /// `task` after the kernel runs.
    pub fn poison_on(mut self, task: TaskId, count: u32) -> Self {
        self.poisons.insert(task, count);
        self
    }

    /// Every (task, attempt) pair the pool asked about, in the order the
    /// workers reached them.
    pub fn attempts_seen(&self) -> Vec<(TaskId, u32)> {
        self.seen.lock().expect("injector log").clone()
    }
}

impl FaultInjector for ScriptedFaults {
    fn before_attempt(&self, task: TaskId, attempt: u32) -> InjectedFault {
        self.seen
            .lock()
            .expect("injector log")
            .push((task, attempt));
        if let Some(&n) = self.panics.get(&task) {
            if attempt < n {
                return InjectedFault::Panic;
            }
        }
        if let Some(&n) = self.transients.get(&task) {
            if attempt < n {
                return InjectedFault::TransientError;
            }
        }
        if let Some(&(n, d)) = self.stalls.get(&task) {
            if attempt < n {
                return InjectedFault::Stall(d);
            }
        }
        if let Some(&n) = self.poisons.get(&task) {
            if attempt < n {
                return InjectedFault::PoisonNan;
            }
        }
        InjectedFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let ft = FaultTolerance {
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(10),
            ..FaultTolerance::default()
        };
        assert_eq!(ft.backoff(1), Duration::from_millis(2));
        assert_eq!(ft.backoff(2), Duration::from_millis(4));
        assert_eq!(ft.backoff(3), Duration::from_millis(8));
        assert_eq!(ft.backoff(4), Duration::from_millis(10)); // capped
        assert_eq!(ft.backoff(60), Duration::from_millis(10)); // no overflow
    }

    #[test]
    fn scripted_faults_clear_after_count() {
        let s = ScriptedFaults::new().panic_on(3, 2).fail_on(5, 1).stall_on(
            7,
            1,
            Duration::from_millis(1),
        );
        assert_eq!(s.before_attempt(3, 0), InjectedFault::Panic);
        assert_eq!(s.before_attempt(3, 1), InjectedFault::Panic);
        assert_eq!(s.before_attempt(3, 2), InjectedFault::None);
        assert_eq!(s.before_attempt(5, 0), InjectedFault::TransientError);
        assert_eq!(s.before_attempt(5, 1), InjectedFault::None);
        assert_eq!(
            s.before_attempt(7, 0),
            InjectedFault::Stall(Duration::from_millis(1))
        );
        assert_eq!(s.before_attempt(9, 0), InjectedFault::None);
        assert_eq!(s.attempts_seen().len(), 7);
    }

    #[test]
    fn poison_clears_after_count() {
        let s = ScriptedFaults::new().poison_on(4, 2);
        assert_eq!(s.before_attempt(4, 0), InjectedFault::PoisonNan);
        assert_eq!(s.before_attempt(4, 1), InjectedFault::PoisonNan);
        assert_eq!(s.before_attempt(4, 2), InjectedFault::None);
    }
}
