//! Manager + computing-thread pool (paper Fig. 7).
//!
//! The calling thread is the **manager**: it owns DAG readiness
//! ([`ReadyTracker`]), orders the ready set by [`SchedulePolicy`]
//! ([`ReadyQueue`]), and hands one task at a time to each idle worker over
//! that worker's private channel. **Computing threads** stage the task's
//! tiles out of the [`SharedFactorState`] (per-slot locks, pointer swaps
//! only), run the kernel on owned/`Arc`-shared data with no lock held, and
//! commit the results back the same way. Dispatching at most one task per
//! worker keeps the ready set on the manager's side, which is what lets
//! the priority policy actually pick the next task instead of draining a
//! prefetched FIFO.

use crate::scheduler::{DispatchOrder, ReadyQueue, ReadyTracker, SchedulePolicy};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tileqr_dag::{TaskGraph, TaskId, TaskKind};
use tileqr_kernels::exec::{FactorState, SharedFactorState};
use tileqr_kernels::flops;
use tileqr_matrix::{MatrixError, Result, Scalar};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolConfig {
    /// Number of computing threads. `0` means one per available core.
    pub workers: usize,
    /// Dispatch order for ready tasks.
    pub policy: SchedulePolicy,
}

impl PoolConfig {
    /// Resolve `workers == 0` to the hardware parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Per-run report from [`parallel_factor_traced`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Tasks executed by each computing thread.
    pub tasks_per_worker: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Total time workers spent inside `stage` (slot lock waits + pointer
    /// swaps), summed across workers.
    pub stage_wait: Duration,
    /// Total time workers spent inside `commit`, summed across workers.
    pub commit_wait: Duration,
    /// High-water mark of the manager's ready-set depth.
    pub max_ready_depth: usize,
    /// Dispatch policy the run used.
    pub policy: SchedulePolicy,
}

impl RunReport {
    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// Ratio of the busiest worker's task count to the average — 1.0 is
    /// perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_tasks();
        if total == 0 || self.tasks_per_worker.is_empty() {
            return 1.0;
        }
        let avg = total as f64 / self.tasks_per_worker.len() as f64;
        let max = *self.tasks_per_worker.iter().max().unwrap() as f64;
        max / avg
    }

    /// Total lock-path time (stage + commit) as a fraction of `elapsed`
    /// summed over workers — how much of the run the hot path spent
    /// touching shared state.
    pub fn lock_fraction(&self) -> f64 {
        let denom = self.elapsed.as_secs_f64() * self.tasks_per_worker.len().max(1) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.stage_wait.as_secs_f64() + self.commit_wait.as_secs_f64()) / denom
    }
}

/// Per-kernel flop counts as scheduling weights, so the bottom levels
/// reflect real work, not just DAG depth.
fn flop_weight(b: usize) -> impl Fn(TaskKind) -> f64 + Copy {
    move |t| match t {
        TaskKind::Geqrt { .. } => flops::geqrt_flops(b) as f64,
        TaskKind::Unmqr { .. } => flops::unmqr_flops(b) as f64,
        TaskKind::Tsqrt { .. } => flops::tsqrt_flops(b) as f64,
        TaskKind::Tsmqr { .. } => flops::tsmqr_flops(b) as f64,
        TaskKind::Ttqrt { .. } => flops::ttqrt_flops(b) as f64,
        TaskKind::Ttmqr { .. } => flops::ttmqr_flops(b) as f64,
    }
}

/// Execute every task of `graph` over `state`, in parallel.
///
/// Returns the completed state. Any kernel error aborts the run and is
/// propagated (the pool drains cleanly first).
pub fn parallel_factor<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<FactorState<T>> {
    parallel_factor_traced(state, graph, config).map(|(state, _)| state)
}

/// What a worker sends back per task: stage and commit durations on
/// success, the kernel error otherwise.
type Completion = (TaskId, usize, Result<(Duration, Duration)>);

/// [`parallel_factor`] with a per-worker [`RunReport`].
pub fn parallel_factor_traced<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<(FactorState<T>, RunReport)> {
    let started = Instant::now();
    let workers = config.effective_workers().max(1);
    if workers == 1 || graph.len() <= 1 {
        // Degenerate pool: run inline in program order.
        let mut state = state;
        state.run_all(graph)?;
        return Ok((
            state,
            RunReport {
                tasks_per_worker: vec![graph.len() as u64],
                elapsed: started.elapsed(),
                stage_wait: Duration::ZERO,
                commit_wait: Duration::ZERO,
                max_ready_depth: 0,
                policy: config.policy,
            },
        ));
    }
    parallel_factor_ordered(state, graph, config, DispatchOrder::Policy(config.policy))
}

/// [`parallel_factor_traced`] dispatching under an explicit
/// [`DispatchOrder`] — the testkit's hook for driving the *real* pool
/// (threads, channels, staged commits and all) through adversarial and
/// seeded ready-set orders. Unlike [`parallel_factor_traced`], a
/// single-worker config still runs the manager loop, so `workers == 1`
/// honours the requested order instead of falling back to program order
/// (the single-worker-starvation scenario).
pub fn parallel_factor_ordered<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
    order: DispatchOrder,
) -> Result<(FactorState<T>, RunReport)> {
    let started = Instant::now();
    let workers = config.effective_workers().max(1);
    if graph.len() <= 1 {
        let mut state = state;
        state.run_all(graph)?;
        return Ok((
            state,
            RunReport {
                tasks_per_worker: vec![graph.len() as u64],
                elapsed: started.elapsed(),
                stage_wait: Duration::ZERO,
                commit_wait: Duration::ZERO,
                max_ready_depth: 0,
                policy: order.base_policy(),
            },
        ));
    }

    let b = state.tiles().tile_size();
    let shared = SharedFactorState::new(state);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();

    struct ManagerStats {
        tasks_per_worker: Vec<u64>,
        stage_wait: Duration,
        commit_wait: Duration,
        max_ready_depth: usize,
    }

    let run_result: Result<ManagerStats> = std::thread::scope(|scope| {
        // One private channel per worker: the manager chooses *which* idle
        // worker gets the next task, so no shared ready queue exists on the
        // worker side.
        let mut task_txs = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let (tx, rx) = mpsc::channel::<TaskId>();
            task_txs.push(tx);
            let done_tx = done_tx.clone();
            let shared = &shared;
            scope.spawn(move || {
                while let Ok(tid) = rx.recv() {
                    let task = graph.task(tid);
                    let t0 = Instant::now();
                    let staged = shared.stage(task);
                    let stage_wait = t0.elapsed();
                    let outcome = staged.and_then(|s| s.compute()).map(|done| {
                        let t1 = Instant::now();
                        shared.commit(done);
                        (stage_wait, t1.elapsed())
                    });
                    if done_tx.send((tid, worker_id, outcome)).is_err() {
                        break; // manager gone
                    }
                }
            });
        }
        drop(done_tx);

        // Manager loop: readiness tracking + policy-ordered dispatch.
        let mut tracker = ReadyTracker::new(graph);
        let mut queue = ReadyQueue::for_order(order, graph, flop_weight(b));
        for t in tracker.initial_ready(graph) {
            queue.push(t);
        }
        let mut idle: Vec<usize> = (0..workers).rev().collect();
        let mut in_flight = 0usize;
        let mut first_error: Option<MatrixError> = None;
        let mut stats = ManagerStats {
            tasks_per_worker: vec![0u64; workers],
            stage_wait: Duration::ZERO,
            commit_wait: Duration::ZERO,
            max_ready_depth: 0,
        };
        loop {
            while first_error.is_none() && !idle.is_empty() && !queue.is_empty() {
                let w = idle.pop().expect("nonempty");
                let t = queue.pop().expect("nonempty");
                task_txs[w].send(t).expect("worker alive");
                in_flight += 1;
            }
            if in_flight == 0 {
                break;
            }
            let (tid, worker_id, outcome) = done_rx.recv().expect("workers alive");
            in_flight -= 1;
            idle.push(worker_id);
            stats.tasks_per_worker[worker_id] += 1;
            match outcome {
                Ok((stage, commit)) => {
                    stats.stage_wait += stage;
                    stats.commit_wait += commit;
                    if first_error.is_none() {
                        for ready in tracker.complete(graph, tid) {
                            queue.push(ready);
                        }
                    }
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        drop(task_txs); // workers exit
        stats.max_ready_depth = queue.max_depth();
        match first_error {
            Some(e) => Err(e),
            None => {
                debug_assert!(tracker.all_done());
                Ok(stats)
            }
        }
    });

    let stats = run_result?;
    Ok((
        shared.into_state(),
        RunReport {
            tasks_per_worker: stats.tasks_per_worker,
            elapsed: started.elapsed(),
            stage_wait: stats.stage_wait,
            commit_wait: stats.commit_wait,
            max_ready_depth: stats.max_ready_depth,
            policy: order.base_policy(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;
    use tileqr_kernels::exec::{apply_q_dense, FactorState};
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::matmul;
    use tileqr_matrix::{Matrix, TiledMatrix};

    fn factor_parallel(
        n: usize,
        b: usize,
        workers: usize,
    ) -> (Matrix<f64>, FactorState<f64>, TaskGraph) {
        let a = random_matrix::<f64>(n, n, 99);
        let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
        let g = TaskGraph::build(
            tiled.tile_rows(),
            tiled.tile_cols(),
            EliminationOrder::FlatTs,
        );
        let st = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        (a, st, g)
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_matrix::<f64>(24, 24, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);

        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();

        let par = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // Tiled QR is deterministic at the task level, so parallel and
        // sequential results are bit-identical.
        assert_eq!(seq.tiles().to_matrix(), par.tiles().to_matrix());
    }

    #[test]
    fn critical_path_policy_matches_fifo_bitwise() {
        let a = random_matrix::<f64>(24, 24, 2);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);

        let fifo = parallel_factor(
            FactorState::new(tiled.clone()),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::Fifo,
            },
        )
        .unwrap();
        let cp = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::CriticalPath,
            },
        )
        .unwrap();
        assert_eq!(fifo.tiles().to_matrix(), cp.tiles().to_matrix());
        assert_eq!(fifo.r_matrix(), cp.r_matrix());
    }

    #[test]
    fn parallel_factorization_is_correct() {
        let (a, st, g) = factor_parallel(32, 8, 4);
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn single_worker_inline_path() {
        let (a, st, g) = factor_parallel(16, 4, 1);
        let mut q = Matrix::identity(16);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn many_workers_small_graph() {
        // More workers than tasks must not deadlock.
        let (a, st, g) = factor_parallel(8, 4, 16);
        let mut q = Matrix::identity(8);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn default_config_uses_all_cores() {
        let c = PoolConfig::default();
        assert!(c.effective_workers() >= 1);
        assert_eq!(c.policy, SchedulePolicy::Fifo);
    }

    #[test]
    fn tt_order_in_parallel() {
        let a = random_matrix::<f64>(32, 8, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 2, EliminationOrder::BinaryTt);
        let st = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::CriticalPath,
            },
        )
        .unwrap();
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn run_report_accounts_every_task() {
        let a = random_matrix::<f64>(32, 32, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 8, EliminationOrder::FlatTs);
        let (_, report) = super::parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                policy: SchedulePolicy::CriticalPath,
            },
        )
        .unwrap();
        assert_eq!(report.total_tasks() as usize, g.len());
        assert_eq!(report.tasks_per_worker.len(), 3);
        assert!(report.imbalance() >= 1.0);
        assert!(report.elapsed.as_nanos() > 0);
        assert!(report.max_ready_depth >= 1);
        assert_eq!(report.policy, SchedulePolicy::CriticalPath);
        // The whole point of per-tile ownership: the lock path is a sliver
        // of the run.
        assert!(report.lock_fraction() < 0.5);
    }

    #[test]
    fn adversarial_orders_match_sequential_bitwise() {
        let a = random_matrix::<f64>(24, 24, 17);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        let seq_tiles = seq.tiles().to_matrix();

        for order in [
            DispatchOrder::Lifo,
            DispatchOrder::ReversePriority,
            DispatchOrder::Seeded(7),
        ] {
            for workers in [1usize, 3] {
                let (st, report) = super::parallel_factor_ordered(
                    FactorState::new(tiled.clone()),
                    &g,
                    PoolConfig {
                        workers,
                        ..PoolConfig::default()
                    },
                    order,
                )
                .unwrap();
                assert_eq!(
                    st.tiles().to_matrix(),
                    seq_tiles,
                    "{order:?} workers={workers}"
                );
                assert_eq!(report.total_tasks() as usize, g.len());
            }
        }
    }

    #[test]
    fn repeated_runs_identical() {
        let (_, st1, _) = factor_parallel(24, 4, 4);
        let (_, st2, _) = factor_parallel(24, 4, 4);
        assert_eq!(st1.tiles().to_matrix(), st2.tiles().to_matrix());
    }
}
