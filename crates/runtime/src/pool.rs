//! Manager + computing-thread pool (paper Fig. 7).

use crate::scheduler::ReadyTracker;
use crossbeam::channel;
use parking_lot::Mutex;
use tileqr_dag::{TaskGraph, TaskId};
use tileqr_kernels::exec::FactorState;
use tileqr_matrix::{MatrixError, Result, Scalar};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolConfig {
    /// Number of computing threads. `0` means one per available core.
    pub workers: usize,
}

impl PoolConfig {
    /// Resolve `workers == 0` to the hardware parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Per-run report from [`parallel_factor_traced`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Tasks executed by each computing thread.
    pub tasks_per_worker: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
}

impl RunReport {
    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// Ratio of the busiest worker's task count to the average — 1.0 is
    /// perfectly balanced.
    pub fn imbalance(&self) -> f64 {
        let total = self.total_tasks();
        if total == 0 || self.tasks_per_worker.is_empty() {
            return 1.0;
        }
        let avg = total as f64 / self.tasks_per_worker.len() as f64;
        let max = *self.tasks_per_worker.iter().max().unwrap() as f64;
        max / avg
    }
}

/// Execute every task of `graph` over `state`, in parallel.
///
/// The calling thread acts as the manager (Fig. 7): it owns the
/// [`ReadyTracker`], dispatches ready task ids over a channel, and receives
/// completions. Computing threads stage a task under the state lock, run
/// the kernel on owned tiles with the lock released, commit, and report
/// back.
///
/// Returns the completed state. Any kernel error aborts the run and is
/// propagated (the pool drains cleanly first).
pub fn parallel_factor<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<FactorState<T>> {
    parallel_factor_traced(state, graph, config).map(|(state, _)| state)
}

/// [`parallel_factor`] with a per-worker [`RunReport`].
pub fn parallel_factor_traced<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<(FactorState<T>, RunReport)> {
    let started = std::time::Instant::now();
    let workers = config.effective_workers().max(1);
    if workers == 1 || graph.len() <= 1 {
        // Degenerate pool: run inline.
        let mut state = state;
        state.run_all(graph)?;
        return Ok((
            state,
            RunReport {
                tasks_per_worker: vec![graph.len() as u64],
                elapsed: started.elapsed(),
            },
        ));
    }

    let shared = Mutex::new(state);
    let (task_tx, task_rx) = channel::unbounded::<TaskId>();
    let (done_tx, done_rx) = channel::unbounded::<(TaskId, usize, Result<()>)>();

    let run_result: Result<Vec<u64>> = crossbeam::thread::scope(|scope| {
        for worker_id in 0..workers {
            let task_rx = task_rx.clone();
            let done_tx = done_tx.clone();
            let shared = &shared;
            scope.spawn(move |_| {
                while let Ok(tid) = task_rx.recv() {
                    let task = graph.task(tid);
                    let staged = { shared.lock().stage(task) };
                    let outcome = staged
                        .and_then(|s| s.compute())
                        .map(|done| shared.lock().commit(done));
                    if done_tx.send((tid, worker_id, outcome)).is_err() {
                        break; // manager gone
                    }
                }
            });
        }
        drop(task_rx);
        drop(done_tx);

        // Manager loop.
        let mut tracker = ReadyTracker::new(graph);
        let mut in_flight = 0usize;
        for t in tracker.initial_ready(graph) {
            task_tx.send(t).expect("workers alive");
            in_flight += 1;
        }
        let mut first_error: Option<MatrixError> = None;
        let mut tasks_per_worker = vec![0u64; workers];
        while in_flight > 0 {
            let (tid, worker_id, outcome) = done_rx.recv().expect("workers alive");
            in_flight -= 1;
            tasks_per_worker[worker_id] += 1;
            match outcome {
                Ok(()) => {
                    if first_error.is_none() {
                        for ready in tracker.complete(graph, tid) {
                            task_tx.send(ready).expect("workers alive");
                            in_flight += 1;
                        }
                    }
                }
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        drop(task_tx); // workers exit
        match first_error {
            Some(e) => Err(e),
            None => {
                debug_assert!(tracker.all_done());
                Ok(tasks_per_worker)
            }
        }
    })
    .expect("worker thread panicked");

    let tasks_per_worker = run_result?;
    Ok((
        shared.into_inner(),
        RunReport {
            tasks_per_worker,
            elapsed: started.elapsed(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;
    use tileqr_kernels::exec::{apply_q_dense, FactorState};
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::matmul;
    use tileqr_matrix::{Matrix, TiledMatrix};

    fn factor_parallel(n: usize, b: usize, workers: usize) -> (Matrix<f64>, FactorState<f64>, TaskGraph) {
        let a = random_matrix::<f64>(n, n, 99);
        let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
        let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), EliminationOrder::FlatTs);
        let st = parallel_factor(FactorState::new(tiled), &g, PoolConfig { workers }).unwrap();
        (a, st, g)
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_matrix::<f64>(24, 24, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);

        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();

        let par = parallel_factor(FactorState::new(tiled), &g, PoolConfig { workers: 4 }).unwrap();
        // Tiled QR is deterministic at the task level, so parallel and
        // sequential results are bit-identical.
        assert_eq!(seq.tiles().to_matrix(), par.tiles().to_matrix());
    }

    #[test]
    fn parallel_factorization_is_correct() {
        let (a, st, g) = factor_parallel(32, 8, 4);
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn single_worker_inline_path() {
        let (a, st, g) = factor_parallel(16, 4, 1);
        let mut q = Matrix::identity(16);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn many_workers_small_graph() {
        // More workers than tasks must not deadlock.
        let (a, st, g) = factor_parallel(8, 4, 16);
        let mut q = Matrix::identity(8);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn default_config_uses_all_cores() {
        let c = PoolConfig::default();
        assert!(c.effective_workers() >= 1);
    }

    #[test]
    fn tt_order_in_parallel() {
        let a = random_matrix::<f64>(32, 8, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 2, EliminationOrder::BinaryTt);
        let st = parallel_factor(FactorState::new(tiled), &g, PoolConfig { workers: 4 }).unwrap();
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn run_report_accounts_every_task() {
        let a = random_matrix::<f64>(32, 32, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 8, EliminationOrder::FlatTs);
        let (_, report) =
            super::parallel_factor_traced(FactorState::new(tiled), &g, PoolConfig { workers: 3 })
                .unwrap();
        assert_eq!(report.total_tasks() as usize, g.len());
        assert_eq!(report.tasks_per_worker.len(), 3);
        assert!(report.imbalance() >= 1.0);
        assert!(report.elapsed.as_nanos() > 0);
    }

    #[test]
    fn repeated_runs_identical() {
        let (_, st1, _) = factor_parallel(24, 4, 4);
        let (_, st2, _) = factor_parallel(24, 4, 4);
        assert_eq!(st1.tiles().to_matrix(), st2.tiles().to_matrix());
    }
}
