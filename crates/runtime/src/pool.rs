//! Manager + computing-thread pool (paper Fig. 7).
//!
//! The calling thread is the **manager**: it owns DAG readiness
//! ([`ReadyTracker`]), orders the ready set by [`SchedulePolicy`]
//! ([`ReadyQueue`]), and hands one task at a time to each idle worker over
//! that worker's private channel. **Computing threads** stage the task's
//! tiles out of the [`SharedFactorState`] (per-slot locks, pointer swaps
//! only), run the kernel on owned/`Arc`-shared data with no lock held, and
//! commit the results back the same way. Dispatching at most one task per
//! worker keeps the ready set on the manager's side, which is what lets
//! the priority policy actually pick the next task instead of draining a
//! prefetched FIFO.
//!
//! Two execution modes share the manager loop:
//!
//! * **Fast** (the default): staging swaps written tiles out of the shared
//!   state (zero-copy) and workers commit their own results. A worker
//!   panic or kernel error is *isolated* (`catch_unwind`, no hang, no
//!   abort) but fatal to the run, because the destructively-staged inputs
//!   of the failed task are gone.
//! * **Fault-tolerant** ([`parallel_factor_ft`]): staging clones written
//!   tiles (`stage_preserving`) so the shared state is untouched until
//!   commit, and all commits happen on the manager behind a per-task
//!   `committed` fence. That makes re-execution idempotent: a panicked or
//!   stalled worker is retired, its in-flight task is requeued with
//!   bounded retry + deterministic backoff, and a late result from a
//!   retired worker is either harvested (first commit wins) or dropped.

use crate::error::RuntimeError;
use crate::recovery::{FaultInjector, FaultTolerance, InjectedFault};
use crate::scheduler::{DispatchOrder, ReadyQueue, ReadyTracker, SchedulePolicy};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use tileqr_dag::{bottom_levels, class_slot, CostModel, TaskGraph, TaskId, TaskKind};
use tileqr_kernels::exec::{CompletedTask, FactorState, SharedFactorState};
use tileqr_kernels::{flops, Workspace, WorkspacePolicy};
use tileqr_matrix::{MatrixError, Result, Scalar};
use tileqr_obs::{
    merge_recorders, DriftConfig, DriftDetector, HotPathCounters, KernelHistograms, RawEvent,
    RawKind, Trace, TraceConfig, WorkerRecorder,
};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolConfig {
    /// Number of computing threads. `0` means one per available core.
    pub workers: usize,
    /// Dispatch order for ready tasks.
    pub policy: SchedulePolicy,
    /// Lifecycle tracing. Disabled by default; when disabled the pool
    /// allocates no recorders and reads no extra clocks.
    pub trace: TraceConfig,
    /// Kernel-scratch strategy. [`WorkspacePolicy::PerWorker`] (default)
    /// gives each computing thread one pre-sized arena reused across all
    /// its tasks — zero steady-state allocations. `PerCall` re-allocates
    /// scratch inside every kernel, the pre-arena baseline behaviour.
    pub workspace: WorkspacePolicy,
    /// Where bottom-level priorities come from: flop counts (default) or
    /// calibrated per-class timing curves, so
    /// [`SchedulePolicy::CriticalPath`] can rank by measured microseconds.
    pub cost: CostModel,
    /// Performance-drift re-weighting. Requires a
    /// [`CostModel::Calibrated`] model; at panel boundaries the manager
    /// compares measured compute durations against the model and, past
    /// the damped threshold, recomputes bottom levels for the remaining
    /// DAG in place. Off by default.
    pub drift: DriftConfig,
}

impl PoolConfig {
    /// Resolve `workers == 0` to the hardware parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Per-run report from [`parallel_factor_traced`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Tasks executed by each computing thread (credited to the worker
    /// whose result was committed, so the counts sum to the graph size
    /// even when recovery re-executed tasks).
    pub tasks_per_worker: Vec<u64>,
    /// Wall-clock duration of the run.
    pub elapsed: std::time::Duration,
    /// Total time workers spent inside `stage` (slot lock waits + pointer
    /// swaps), summed across workers.
    pub stage_wait: Duration,
    /// Total time workers spent inside `commit`, summed across workers.
    pub commit_wait: Duration,
    /// High-water mark of the manager's ready-set depth.
    pub max_ready_depth: usize,
    /// Dispatch policy the run used.
    pub policy: SchedulePolicy,
    /// Extra attempts scheduled after a failed attempt (transient kernel
    /// error, worker panic, or stall).
    pub retries: u64,
    /// In-flight tasks returned to the pending set because their worker
    /// died (panic, stall retirement, or a dead dispatch channel).
    pub requeues: u64,
    /// Workers retired mid-run (panicked, stalled past the watchdog, or
    /// found dead at dispatch).
    pub worker_deaths: u64,
    /// Times the drift detector fired and the manager re-ranked the ready
    /// set under freshly scaled costs. Always 0 unless the run had a
    /// calibrated cost model and drift detection enabled.
    pub drift_reweights: u64,
    /// Unified lifecycle trace of the run — `Some` iff the run's
    /// [`TraceConfig`] was enabled. One lane per worker plus a `manager`
    /// lane carrying ready/dispatch/recovery instants (and, in
    /// fault-tolerant mode, the fenced commits).
    pub trace: Option<Trace>,
    /// Memory-discipline counters: copy-on-write fallback clones plus
    /// workspace-arena bytes and growths, summed over all workers.
    pub counters: HotPathCounters,
}

impl RunReport {
    /// Total tasks executed.
    pub fn total_tasks(&self) -> u64 {
        self.tasks_per_worker.iter().sum()
    }

    /// Copy-on-write fallback clones the run took — full `O(b²)` tile
    /// copies on the stage path. 0 for every single-owner execution; any
    /// other value means an `Arc` that should have been unique was still
    /// shared when its writer staged it.
    pub fn cow_clones(&self) -> u64 {
        self.counters.cow_clones
    }

    /// Ratio of the busiest worker's task count to the average — 1.0 is
    /// perfectly balanced, 0.0 when there were no workers at all.
    pub fn imbalance(&self) -> f64 {
        if self.tasks_per_worker.is_empty() {
            return 0.0;
        }
        let total = self.total_tasks();
        if total == 0 {
            return 1.0;
        }
        let avg = total as f64 / self.tasks_per_worker.len() as f64;
        let max = self
            .tasks_per_worker
            .iter()
            .max()
            .copied()
            .unwrap_or_default() as f64;
        max / avg
    }

    /// Total lock-path time (stage + commit) as a fraction of `elapsed`
    /// summed over workers — how much of the run the hot path spent
    /// touching shared state.
    pub fn lock_fraction(&self) -> f64 {
        let denom = self.elapsed.as_secs_f64() * self.tasks_per_worker.len().max(1) as f64;
        if denom == 0.0 {
            return 0.0;
        }
        (self.stage_wait.as_secs_f64() + self.commit_wait.as_secs_f64()) / denom
    }

    /// Per-kernel latency histograms over the run's compute spans.
    /// `None` when the run was not traced.
    pub fn kernel_histograms(&self) -> Option<KernelHistograms> {
        self.trace.as_ref().map(KernelHistograms::from_trace)
    }
}

/// Per-kernel flop counts as scheduling weights, so the bottom levels
/// reflect real work, not just DAG depth.
pub(crate) fn flop_weight(b: usize) -> impl Fn(TaskKind) -> f64 + Copy {
    move |t| match t {
        TaskKind::Geqrt { .. } => flops::geqrt_flops(b) as f64,
        TaskKind::Unmqr { .. } => flops::unmqr_flops(b) as f64,
        TaskKind::Tsqrt { .. } => flops::tsqrt_flops(b) as f64,
        TaskKind::Tsmqr { .. } => flops::tsmqr_flops(b) as f64,
        TaskKind::Ttqrt { .. } => flops::ttqrt_flops(b) as f64,
        TaskKind::Ttmqr { .. } => flops::ttmqr_flops(b) as f64,
    }
}

/// Task weight under the run's [`CostModel`]: flops (the seed behaviour)
/// or calibrated microseconds at tile size `b`.
pub(crate) fn model_weight(cost: CostModel, b: usize) -> impl Fn(TaskKind) -> f64 + Copy {
    move |t| match cost {
        CostModel::Flops => flop_weight(b)(t),
        CostModel::Calibrated(c) => c.cost_us(t, b),
    }
}

/// Execute every task of `graph` over `state`, in parallel.
///
/// Returns the completed state. Any kernel error aborts the run and is
/// propagated (the pool drains cleanly first).
pub fn parallel_factor<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<FactorState<T>> {
    parallel_factor_traced(state, graph, config).map(|(state, _)| state)
}

/// [`parallel_factor`] with a per-worker [`RunReport`].
pub fn parallel_factor_traced<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
) -> Result<(FactorState<T>, RunReport)> {
    let started = Instant::now();
    let workers = config.effective_workers().max(1);
    if workers == 1 || graph.len() <= 1 {
        // Degenerate pool: run inline in program order.
        return run_inline(state, graph, config.policy, started, config.trace);
    }
    parallel_factor_ordered(state, graph, config, DispatchOrder::Policy(config.policy))
}

/// [`parallel_factor_traced`] dispatching under an explicit
/// [`DispatchOrder`] — the testkit's hook for driving the *real* pool
/// (threads, channels, staged commits and all) through adversarial and
/// seeded ready-set orders. Unlike [`parallel_factor_traced`], a
/// single-worker config still runs the manager loop, so `workers == 1`
/// honours the requested order instead of falling back to program order
/// (the single-worker-starvation scenario).
pub fn parallel_factor_ordered<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
    order: DispatchOrder,
) -> Result<(FactorState<T>, RunReport)> {
    let started = Instant::now();
    if graph.len() <= 1 {
        return run_inline(state, graph, order.base_policy(), started, config.trace);
    }
    run_pool(state, graph, config, order, None, None).map_err(MatrixError::from)
}

/// Fault-tolerant (or fault-isolated) parallel factorization.
///
/// With `ft = Some(..)` the pool recovers from worker panics, transient
/// kernel failures, and stalls: the worker is retired (or the error
/// absorbed), the task is requeued after deterministic backoff, and the
/// run continues degraded on the remaining workers — failing only with a
/// structured [`RuntimeError`] once the per-task attempt budget or the
/// worker pool itself is exhausted. With `ft = None` the pool runs the
/// zero-copy fast path: a fault still cannot hang or abort the process
/// (workers execute under `catch_unwind`), but it fails the run, because
/// destructive staging makes re-execution unsafe.
///
/// `injector` is the deterministic test seam — consulted before every
/// attempt, it can script panics, transient failures, and stalls at exact
/// `(task, attempt)` coordinates (see
/// [`ScriptedFaults`](crate::recovery::ScriptedFaults)).
pub fn parallel_factor_ft<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
    ft: Option<FaultTolerance>,
    injector: Option<&dyn FaultInjector>,
) -> std::result::Result<(FactorState<T>, RunReport), RuntimeError> {
    run_pool(
        state,
        graph,
        config,
        DispatchOrder::Policy(config.policy),
        ft,
        injector,
    )
}

fn run_inline<T: Scalar>(
    mut state: FactorState<T>,
    graph: &TaskGraph,
    policy: SchedulePolicy,
    started: Instant,
    trace_cfg: TraceConfig,
) -> Result<(FactorState<T>, RunReport)> {
    let trace = if trace_cfg.enabled {
        // Inline runs have no staging or commit contention; one compute
        // span per task on the single worker lane is the whole story.
        let mut rec = WorkerRecorder::new(trace_cfg.capacity_per_lane.max(graph.len()));
        for tid in 0..graph.len() {
            let t0 = ns_since(started);
            state.execute(graph.task(tid))?;
            rec.record(RawEvent::interval(
                RawKind::Compute,
                tid,
                0,
                t0,
                ns_since(started),
            ));
        }
        Some(merge_recorders(&[rec], vec!["worker0".to_string()], graph))
    } else {
        state.run_all(graph)?;
        None
    };
    // Nonzero cow_clones here means the *caller* kept tile handles alive
    // (e.g. a shallow `TiledMatrix` clone) — the run pays one copy per
    // shared tile on first take. With uniquely-owned input this is 0.
    let counters = HotPathCounters {
        cow_clones: state.cow_clones(),
        workspace_bytes: state.workspace_bytes(),
        workspace_resizes: state.workspace_resizes(),
    };
    Ok((
        state,
        RunReport {
            tasks_per_worker: vec![graph.len() as u64],
            elapsed: started.elapsed(),
            stage_wait: Duration::ZERO,
            commit_wait: Duration::ZERO,
            max_ready_depth: 0,
            policy,
            retries: 0,
            requeues: 0,
            worker_deaths: 0,
            drift_reweights: 0,
            trace,
            counters,
        },
    ))
}

/// Nanoseconds elapsed since `base`, as the trace timestamp.
#[inline]
fn ns_since(base: Instant) -> u64 {
    base.elapsed().as_nanos() as u64
}

/// Nanosecond trace timestamp of an already-captured `Instant`.
#[inline]
fn ns_since_at(base: Instant, t: Instant) -> u64 {
    t.duration_since(base).as_nanos() as u64
}

/// What a worker sends back per attempt.
enum WorkerOutcome<T: Scalar> {
    /// The attempt ran to completion. `completed` carries the outputs in
    /// fault-tolerant mode (the manager commits); in fast mode the worker
    /// already committed and sends `None`.
    Done {
        completed: Option<Box<CompletedTask<T>>>,
        stage_wait: Duration,
        commit_wait: Duration,
        /// Kernel-only duration of the attempt — the drift detector's
        /// input (measured in both modes, trace on or off).
        compute: Duration,
    },
    /// The kernel (or an injected transient fault) returned an error.
    Failed(MatrixError),
    /// The attempt panicked; the worker retires itself after reporting.
    Panicked(String),
}

struct Completion<T: Scalar> {
    task: TaskId,
    worker: usize,
    attempt: u32,
    outcome: WorkerOutcome<T>,
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ManagerStats {
    tasks_per_worker: Vec<u64>,
    stage_wait: Duration,
    commit_wait: Duration,
    max_ready_depth: usize,
    retries: u64,
    requeues: u64,
    worker_deaths: u64,
    drift_reweights: u64,
    trace: Option<Trace>,
}

/// What one worker attempt hands back: the completed task when the
/// commit is deferred to the manager (fault-tolerant mode), plus the
/// stage wait, commit wait, and kernel-only compute time.
type AttemptOutput<T> = (Option<Box<CompletedTask<T>>>, Duration, Duration, Duration);

/// The unified manager loop behind every multi-worker entry point.
fn run_pool<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    config: PoolConfig,
    order: DispatchOrder,
    ft: Option<FaultTolerance>,
    injector: Option<&dyn FaultInjector>,
) -> std::result::Result<(FactorState<T>, RunReport), RuntimeError> {
    let started = Instant::now();
    let workers = config.effective_workers().max(1);
    let b = state.tiles().tile_size();
    let shared = SharedFactorState::new(state);
    let ib = shared.inner_block();
    let (done_tx, done_rx) = mpsc::channel::<Completion<T>>();
    let ft_mode = ft.is_some();
    let trace_cfg = config.trace;
    let per_worker_ws = config.workspace == WorkspacePolicy::PerWorker;
    // Retired workers hand their recorder back over this channel; the
    // manager collects them after closing the dispatch channels.
    let (rec_tx, rec_rx) = mpsc::channel::<(usize, WorkerRecorder)>();
    // Exiting workers report their arena's final size and growth count
    // here; drained after the scope joins, so it never blocks.
    let (ws_tx, ws_rx) = mpsc::channel::<(usize, u64)>();

    let run_result: std::result::Result<ManagerStats, RuntimeError> = std::thread::scope(|scope| {
        // One private channel per worker: the manager chooses *which*
        // idle worker gets the next task, so no shared ready queue
        // exists on the worker side. `None` marks a retired worker.
        let mut task_txs: Vec<Option<mpsc::Sender<(TaskId, u32)>>> = Vec::with_capacity(workers);
        for worker_id in 0..workers {
            let (tx, rx) = mpsc::channel::<(TaskId, u32)>();
            task_txs.push(Some(tx));
            let done_tx = done_tx.clone();
            let rec_tx = rec_tx.clone();
            let ws_tx = ws_tx.clone();
            let shared = &shared;
            let mut rec = trace_cfg
                .enabled
                .then(|| WorkerRecorder::new(trace_cfg.capacity_per_lane));
            // One arena per computing thread, sized once for the run's
            // (b, ib): every kernel this worker executes borrows scratch
            // from it instead of allocating.
            let mut ws = if per_worker_ws {
                Workspace::<T>::new(b, ib)
            } else {
                Workspace::minimal()
            };
            scope.spawn(move || {
                while let Ok((tid, attempt)) = rx.recv() {
                    let task = graph.task(tid);
                    let rec_ref = &mut rec;
                    let ws_ref = &mut ws;
                    let result = catch_unwind(AssertUnwindSafe(|| -> Result<AttemptOutput<T>> {
                        let fault = injector
                            .map_or(InjectedFault::None, |f| f.before_attempt(tid, attempt));
                        match fault {
                            InjectedFault::None | InjectedFault::PoisonNan => {}
                            InjectedFault::Panic => {
                                panic!("injected panic: task {tid} attempt {attempt}")
                            }
                            InjectedFault::TransientError => {
                                return Err(MatrixError::Runtime {
                                    reason: format!(
                                        "injected transient failure: task {tid} attempt {attempt}"
                                    ),
                                })
                            }
                            InjectedFault::Stall(d) => std::thread::sleep(d),
                        }
                        let t0 = Instant::now();
                        let staged = if ft_mode {
                            shared.stage_preserving(task)
                        } else {
                            shared.stage(task)
                        }?;
                        let t_staged = Instant::now();
                        let stage_wait = t_staged.duration_since(t0);
                        let mut done = if per_worker_ws {
                            staged.compute_with(ws_ref)?
                        } else {
                            // PerCall baseline: throwaway scratch every task.
                            staged.compute()?
                        };
                        let compute = t_staged.elapsed();
                        if fault == InjectedFault::PoisonNan {
                            // NaN-corrupt the output *after* the kernel ran;
                            // the pool path has no poison fence (that
                            // containment lives in the service), so this
                            // seam is only consulted by service tests here.
                            done.poison();
                        }
                        if ft_mode {
                            if let Some(r) = rec_ref.as_mut() {
                                let now = ns_since(started);
                                let t0 = ns_since_at(started, t0);
                                let ts = ns_since_at(started, t_staged);
                                r.record(RawEvent::interval(RawKind::Stage, tid, attempt, t0, ts));
                                r.record(RawEvent::interval(
                                    RawKind::Compute,
                                    tid,
                                    attempt,
                                    ts,
                                    now,
                                ));
                            }
                            // Commit on the manager, behind the fence.
                            Ok((Some(Box::new(done)), stage_wait, Duration::ZERO, compute))
                        } else {
                            let t1 = Instant::now();
                            shared.commit(done);
                            if let Some(r) = rec_ref.as_mut() {
                                let now = ns_since(started);
                                let t0 = ns_since_at(started, t0);
                                let ts = ns_since_at(started, t_staged);
                                let tc = ns_since_at(started, t1);
                                r.record(RawEvent::interval(RawKind::Stage, tid, attempt, t0, ts));
                                r.record(RawEvent::interval(
                                    RawKind::Compute,
                                    tid,
                                    attempt,
                                    ts,
                                    tc,
                                ));
                                r.record(RawEvent::interval(
                                    RawKind::Commit,
                                    tid,
                                    attempt,
                                    tc,
                                    now,
                                ));
                            }
                            Ok((None, stage_wait, t1.elapsed(), compute))
                        }
                    }));
                    let (outcome, retire) = match result {
                        Ok(Ok((completed, stage_wait, commit_wait, compute))) => (
                            WorkerOutcome::Done {
                                completed,
                                stage_wait,
                                commit_wait,
                                compute,
                            },
                            false,
                        ),
                        Ok(Err(e)) => (WorkerOutcome::Failed(e), false),
                        Err(payload) => (
                            WorkerOutcome::Panicked(panic_message(payload.as_ref())),
                            true,
                        ),
                    };
                    let gone = done_tx
                        .send(Completion {
                            task: tid,
                            worker: worker_id,
                            attempt,
                            outcome,
                        })
                        .is_err();
                    if gone || retire {
                        break;
                    }
                }
                if let Some(r) = rec {
                    let _ = rec_tx.send((worker_id, r));
                }
                let _ = ws_tx.send((ws.bytes(), ws.resizes()));
            });
        }
        drop(done_tx);
        drop(rec_tx);
        drop(ws_tx);

        // Manager loop: readiness tracking + policy-ordered dispatch +
        // recovery bookkeeping.
        let total = graph.len();
        let mut tracker = ReadyTracker::new(graph);
        let mut queue = ReadyQueue::for_order(order, graph, model_weight(config.cost, b));
        // Drift re-weighting state: only armed when the run both asked for
        // it and has a calibrated model to measure against. `base` is the
        // *original* calibration; the detector's ratios are absolute vs
        // that, so each re-weight scales `base`, never the scaled costs.
        let mut drift_state = config
            .drift
            .enabled
            .then(|| config.cost.class_costs())
            .flatten()
            .map(|base| (DriftDetector::new(config.drift, base.expected_us(b)), base));
        let mut drift_panel = 0usize;
        // The manager's own lane: ready/dispatch/recovery instants, plus
        // the fenced commits in fault-tolerant mode.
        let mut mgr_rec = trace_cfg
            .enabled
            .then(|| WorkerRecorder::new(trace_cfg.capacity_per_lane));
        for t in tracker.initial_ready(graph) {
            if let Some(r) = mgr_rec.as_mut() {
                r.record(RawEvent::instant(RawKind::Ready, t, 0, ns_since(started)));
            }
            queue.push(t);
        }
        let mut idle: Vec<usize> = (0..workers).rev().collect();
        let mut alive = vec![true; workers];
        let mut in_flight_of: Vec<Option<(TaskId, Instant)>> = vec![None; workers];
        let mut in_flight = 0usize;
        let mut committed = vec![false; total];
        let mut completed = 0usize;
        let mut attempts = vec![0u32; total];
        let mut parked: BinaryHeap<Reverse<(Instant, TaskId)>> = BinaryHeap::new();
        let mut fatal: Option<RuntimeError> = None;
        let mut stats = ManagerStats {
            tasks_per_worker: vec![0u64; workers],
            stage_wait: Duration::ZERO,
            commit_wait: Duration::ZERO,
            max_ready_depth: 0,
            retries: 0,
            requeues: 0,
            worker_deaths: 0,
            drift_reweights: 0,
            trace: None,
        };

        // Park `t` for a backoff-delayed retry, or fail the run once
        // its attempt budget is gone.
        macro_rules! retry_or_fail {
            ($t:expr, $last:expr) => {{
                let t: TaskId = $t;
                let ftc = ft.expect("retries only happen in fault-tolerant mode");
                if attempts[t] >= ftc.max_attempts {
                    if fatal.is_none() {
                        fatal = Some(RuntimeError::RetriesExhausted {
                            task: t,
                            attempts: attempts[t],
                            last: $last,
                        });
                    }
                } else {
                    stats.retries += 1;
                    if let Some(r) = mgr_rec.as_mut() {
                        r.record(RawEvent::instant(
                            RawKind::Retry,
                            t,
                            attempts[t] as u64,
                            ns_since(started),
                        ));
                    }
                    let delay = ftc.backoff(attempts[t]);
                    parked.push(Reverse((Instant::now() + delay, t)));
                }
            }};
        }

        // Record a worker-death (and optional requeue) instant pair.
        macro_rules! trace_death {
            ($w:expr, $t:expr) => {{
                if let Some(r) = mgr_rec.as_mut() {
                    let now = ns_since(started);
                    r.record(RawEvent::instant(
                        RawKind::WorkerDeath,
                        RawEvent::NO_TASK,
                        $w as u64,
                        now,
                    ));
                    if let Some(t) = $t {
                        r.record(RawEvent::instant(RawKind::Requeue, t, $w as u64, now));
                    }
                }
            }};
        }

        loop {
            // Wake parked retries whose backoff has elapsed.
            let now = Instant::now();
            while let Some(&Reverse((when, t))) = parked.peek() {
                if when > now {
                    break;
                }
                parked.pop();
                if !committed[t] {
                    queue.push(t);
                }
            }

            // Dispatch: pair ready tasks with alive idle workers.
            while fatal.is_none() {
                while idle.last().is_some_and(|&w| !alive[w]) {
                    idle.pop();
                }
                let Some(&w) = idle.last() else { break };
                let Some(t) = queue.pop() else { break };
                if committed[t] {
                    continue; // superseded by a harvested late result
                }
                idle.pop();
                attempts[t] += 1;
                let attempt = attempts[t] - 1;
                let sent = task_txs[w]
                    .as_ref()
                    .is_some_and(|tx| tx.send((t, attempt)).is_ok());
                if sent {
                    if let Some(r) = mgr_rec.as_mut() {
                        r.record(RawEvent::instant(
                            RawKind::Dispatch,
                            t,
                            w as u64,
                            ns_since(started),
                        ));
                    }
                    in_flight_of[w] = Some((t, Instant::now()));
                    in_flight += 1;
                } else {
                    // Worker vanished without reporting: retire it and
                    // put the task back (the attempt never started).
                    alive[w] = false;
                    task_txs[w] = None;
                    stats.worker_deaths += 1;
                    attempts[t] -= 1;
                    stats.requeues += 1;
                    trace_death!(w, Some(t));
                    queue.push(t);
                }
            }

            // Termination.
            if completed == total {
                break;
            }
            if in_flight == 0 {
                if fatal.is_some() {
                    break;
                }
                if !alive.iter().any(|&a| a) {
                    fatal = Some(RuntimeError::AllWorkersDead { completed, total });
                    break;
                }
                if parked.is_empty() && queue.is_empty() {
                    // Unreachable: every uncommitted task is queued,
                    // parked, in flight, or behind one that is. Guard
                    // instead of hanging if the invariant ever breaks.
                    fatal = Some(RuntimeError::Disconnected { in_flight: 0 });
                    break;
                }
            }

            // Wait for the next completion, bounded by the earliest
            // parked wake-up or watchdog expiry.
            let mut deadline: Option<Instant> = parked.peek().map(|&Reverse((when, _))| when);
            if let Some(st) = ft.and_then(|f| f.stall_timeout) {
                for w in 0..workers {
                    if !alive[w] {
                        continue;
                    }
                    if let Some((_, since)) = in_flight_of[w] {
                        let dl = since + st;
                        deadline = Some(deadline.map_or(dl, |d| d.min(dl)));
                    }
                }
            }
            let received = match deadline {
                None => match done_rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => {
                        if fatal.is_none() {
                            fatal = Some(RuntimeError::Disconnected { in_flight });
                        }
                        break;
                    }
                },
                Some(dl) => {
                    let wait = dl.saturating_duration_since(Instant::now());
                    match done_rx.recv_timeout(wait) {
                        Ok(m) => Some(m),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            if fatal.is_none() {
                                fatal = Some(RuntimeError::Disconnected { in_flight });
                            }
                            break;
                        }
                    }
                }
            };

            let Some(Completion {
                task: t,
                worker: w,
                attempt: done_attempt,
                outcome,
            }) = received
            else {
                // Timeout: sweep the watchdog, retiring stalled workers
                // and requeueing their tasks.
                if let Some(st) = ft.and_then(|f| f.stall_timeout) {
                    let now = Instant::now();
                    for w in 0..workers {
                        if !alive[w] {
                            continue;
                        }
                        let Some((t, since)) = in_flight_of[w] else {
                            continue;
                        };
                        if now.duration_since(since) >= st {
                            alive[w] = false;
                            task_txs[w] = None;
                            in_flight_of[w] = None;
                            in_flight -= 1;
                            stats.worker_deaths += 1;
                            if !committed[t] {
                                stats.requeues += 1;
                                trace_death!(w, Some(t));
                                retry_or_fail!(t, format!("worker {w} stalled past {st:?}"));
                            } else {
                                trace_death!(w, None::<TaskId>);
                            }
                        }
                    }
                }
                continue;
            };

            // `expected` distinguishes the attempt the manager is
            // waiting on from a late report by a retired worker.
            let expected = alive[w] && in_flight_of[w].is_some_and(|(xt, _)| xt == t);
            if expected {
                in_flight_of[w] = None;
                in_flight -= 1;
            }
            match outcome {
                WorkerOutcome::Done {
                    completed: payload,
                    stage_wait,
                    commit_wait,
                    compute,
                } => {
                    stats.stage_wait += stage_wait;
                    stats.commit_wait += commit_wait;
                    if !committed[t] {
                        if let Some((detector, base)) = drift_state.as_mut() {
                            let kind = graph.task(t);
                            detector.record(class_slot(kind.class()), compute.as_secs_f64() * 1e6);
                            // Panel boundary: the first committed task of a
                            // later panel closes the previous panel's window.
                            if kind.panel() > drift_panel {
                                drift_panel = kind.panel();
                                if let Some(ratios) = detector.check() {
                                    let scaled = base.scaled(ratios);
                                    queue.reprioritize(bottom_levels(graph, |k| {
                                        scaled.cost_us(k, b)
                                    }));
                                    stats.drift_reweights += 1;
                                }
                            }
                        }
                        // First result wins — even from a retired
                        // worker: duplicate attempts stage identical
                        // inputs (nothing conflicting runs before the
                        // commit), so outputs are bit-identical.
                        if let Some(done) = payload {
                            let t1 = Instant::now();
                            shared.commit(*done);
                            stats.commit_wait += t1.elapsed();
                            if let Some(r) = mgr_rec.as_mut() {
                                r.record(RawEvent::interval(
                                    RawKind::Commit,
                                    t,
                                    done_attempt,
                                    ns_since_at(started, t1),
                                    ns_since(started),
                                ));
                            }
                        }
                        committed[t] = true;
                        completed += 1;
                        stats.tasks_per_worker[w] += 1;
                        let ready = tracker.complete(graph, t);
                        if fatal.is_none() {
                            for r in ready {
                                if let Some(rec) = mgr_rec.as_mut() {
                                    rec.record(RawEvent::instant(
                                        RawKind::Ready,
                                        r,
                                        0,
                                        ns_since(started),
                                    ));
                                }
                                queue.push(r);
                            }
                        }
                    }
                    if expected {
                        idle.push(w);
                    }
                }
                WorkerOutcome::Failed(e) => {
                    if expected {
                        idle.push(w);
                        if !committed[t] {
                            if ft_mode {
                                retry_or_fail!(t, e.to_string());
                            } else if fatal.is_none() {
                                fatal = Some(RuntimeError::Kernel { task: t, source: e });
                            }
                        }
                    }
                    // A late failure from a retired worker is ignored:
                    // its task was already requeued at retirement.
                }
                WorkerOutcome::Panicked(message) => {
                    if alive[w] {
                        alive[w] = false;
                        task_txs[w] = None;
                        stats.worker_deaths += 1;
                        trace_death!(w, None::<TaskId>);
                    }
                    if expected && !committed[t] {
                        stats.requeues += 1;
                        if let Some(r) = mgr_rec.as_mut() {
                            r.record(RawEvent::instant(
                                RawKind::Requeue,
                                t,
                                w as u64,
                                ns_since(started),
                            ));
                        }
                        if ft_mode {
                            retry_or_fail!(t, format!("panic: {message}"));
                        } else if fatal.is_none() {
                            fatal = Some(RuntimeError::TaskPanicked {
                                task: t,
                                worker: w,
                                message,
                            });
                        }
                    }
                }
            }
        }

        stats.max_ready_depth = queue.max_depth();
        drop(task_txs); // workers exit
        if let Some(mgr) = mgr_rec {
            // Blocks until every worker (even one finishing a late
            // attempt) has exited and returned its recorder — exactly
            // the join the enclosing scope performs anyway.
            let mut slots: Vec<Option<WorkerRecorder>> = (0..workers).map(|_| None).collect();
            for (w, r) in rec_rx.iter() {
                slots[w] = Some(r);
            }
            let mut recorders: Vec<WorkerRecorder> = slots
                .into_iter()
                .map(|s| s.unwrap_or_else(|| WorkerRecorder::new(1)))
                .collect();
            recorders.push(mgr);
            let mut lanes: Vec<String> = (0..workers).map(|w| format!("worker{w}")).collect();
            lanes.push("manager".to_string());
            stats.trace = Some(merge_recorders(&recorders, lanes, graph));
        }
        match fatal {
            Some(e) => Err(e),
            None => {
                debug_assert!(tracker.all_done());
                Ok(stats)
            }
        }
    });

    let stats = run_result?;
    // Every worker has exited (the scope joined them), so this drains
    // without blocking. Workers that died before reporting simply
    // contribute nothing.
    let mut counters = HotPathCounters::default();
    for (bytes, resizes) in ws_rx.try_iter() {
        counters.workspace_bytes += bytes;
        counters.workspace_resizes += resizes;
    }
    let state = shared.into_state();
    counters.cow_clones = state.cow_clones();
    Ok((
        state,
        RunReport {
            tasks_per_worker: stats.tasks_per_worker,
            elapsed: started.elapsed(),
            stage_wait: stats.stage_wait,
            commit_wait: stats.commit_wait,
            max_ready_depth: stats.max_ready_depth,
            policy: order.base_policy(),
            retries: stats.retries,
            requeues: stats.requeues,
            worker_deaths: stats.worker_deaths,
            drift_reweights: stats.drift_reweights,
            trace: stats.trace,
            counters,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::ScriptedFaults;
    use tileqr_dag::EliminationOrder;
    use tileqr_kernels::exec::{apply_q_dense, FactorState};
    use tileqr_matrix::gen::random_matrix;
    use tileqr_matrix::ops::matmul;
    use tileqr_matrix::{Matrix, TiledMatrix};

    fn factor_parallel(
        n: usize,
        b: usize,
        workers: usize,
    ) -> (Matrix<f64>, FactorState<f64>, TaskGraph) {
        let a = random_matrix::<f64>(n, n, 99);
        let tiled = TiledMatrix::from_matrix(&a, b).unwrap();
        let g = TaskGraph::build(
            tiled.tile_rows(),
            tiled.tile_cols(),
            EliminationOrder::FlatTs,
        );
        let st = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        (a, st, g)
    }

    /// Sequential reference for bit-identity checks.
    fn sequential_tiles(a: &Matrix<f64>, b: usize) -> (TiledMatrix<f64>, TaskGraph, Matrix<f64>) {
        let tiled = TiledMatrix::from_matrix(a, b).unwrap();
        let g = TaskGraph::build(
            tiled.tile_rows(),
            tiled.tile_cols(),
            EliminationOrder::FlatTs,
        );
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        let m = seq.tiles().to_matrix();
        (tiled, g, m)
    }

    #[test]
    fn parallel_matches_sequential() {
        let a = random_matrix::<f64>(24, 24, 1);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);

        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();

        let par = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        // Tiled QR is deterministic at the task level, so parallel and
        // sequential results are bit-identical.
        assert_eq!(seq.tiles().to_matrix(), par.tiles().to_matrix());
    }

    #[test]
    fn critical_path_policy_matches_fifo_bitwise() {
        let a = random_matrix::<f64>(24, 24, 2);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);

        let fifo = parallel_factor(
            FactorState::new(tiled.clone()),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::Fifo,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let cp = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::CriticalPath,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        assert_eq!(fifo.tiles().to_matrix(), cp.tiles().to_matrix());
        assert_eq!(fifo.r_matrix(), cp.r_matrix());
    }

    #[test]
    fn parallel_factorization_is_correct() {
        let (a, st, g) = factor_parallel(32, 8, 4);
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn single_worker_inline_path() {
        let (a, st, g) = factor_parallel(16, 4, 1);
        let mut q = Matrix::identity(16);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn many_workers_small_graph() {
        // More workers than tasks must not deadlock.
        let (a, st, g) = factor_parallel(8, 4, 16);
        let mut q = Matrix::identity(8);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let qr = matmul(&q, &st.r_matrix()).unwrap();
        assert!(qr.approx_eq(&a, 1e-11));
    }

    #[test]
    fn default_config_uses_all_cores() {
        let c = PoolConfig::default();
        assert!(c.effective_workers() >= 1);
        assert_eq!(c.policy, SchedulePolicy::Fifo);
    }

    #[test]
    fn tt_order_in_parallel() {
        let a = random_matrix::<f64>(32, 8, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 2, EliminationOrder::BinaryTt);
        let st = parallel_factor(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 4,
                policy: SchedulePolicy::CriticalPath,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let (pm, _) = st.tiles().padded_dims();
        let mut q = Matrix::identity(pm);
        apply_q_dense(&st, &g, &mut q).unwrap();
        let r = st.r_matrix();
        let qr = matmul(&q, &r).unwrap();
        assert!(qr.approx_eq(&a, 1e-10));
    }

    #[test]
    fn run_report_accounts_every_task() {
        let a = random_matrix::<f64>(32, 32, 5);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(8, 8, EliminationOrder::FlatTs);
        let (_, report) = super::parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                policy: SchedulePolicy::CriticalPath,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        assert_eq!(report.total_tasks() as usize, g.len());
        assert_eq!(report.tasks_per_worker.len(), 3);
        assert!(report.imbalance() >= 1.0);
        assert!(report.elapsed.as_nanos() > 0);
        assert!(report.max_ready_depth >= 1);
        assert_eq!(report.policy, SchedulePolicy::CriticalPath);
        // A clean run records no recovery activity.
        assert_eq!(report.retries, 0);
        assert_eq!(report.requeues, 0);
        assert_eq!(report.worker_deaths, 0);
        // The whole point of per-tile ownership: the lock path is a sliver
        // of the run.
        assert!(report.lock_fraction() < 0.5);
    }

    #[test]
    fn adversarial_orders_match_sequential_bitwise() {
        let a = random_matrix::<f64>(24, 24, 17);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let mut seq = FactorState::new(tiled.clone());
        seq.run_all(&g).unwrap();
        let seq_tiles = seq.tiles().to_matrix();

        for order in [
            DispatchOrder::Lifo,
            DispatchOrder::ReversePriority,
            DispatchOrder::Seeded(7),
        ] {
            for workers in [1usize, 3] {
                let (st, report) = super::parallel_factor_ordered(
                    FactorState::new(tiled.clone()),
                    &g,
                    PoolConfig {
                        workers,
                        ..PoolConfig::default()
                    },
                    order,
                )
                .unwrap();
                assert_eq!(
                    st.tiles().to_matrix(),
                    seq_tiles,
                    "{order:?} workers={workers}"
                );
                assert_eq!(report.total_tasks() as usize, g.len());
            }
        }
    }

    #[test]
    fn repeated_runs_identical() {
        let (_, st1, _) = factor_parallel(24, 4, 4);
        let (_, st2, _) = factor_parallel(24, 4, 4);
        assert_eq!(st1.tiles().to_matrix(), st2.tiles().to_matrix());
    }

    #[test]
    fn traced_run_captures_full_lifecycle() {
        let a = random_matrix::<f64>(24, 24, 8);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let (_, report) = super::parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                trace: TraceConfig::enabled(),
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let trace = report.trace.as_ref().expect("tracing was enabled");
        assert_eq!(trace.compute_span_count(), g.len());
        assert_eq!(trace.lanes.len(), 4, "3 workers + manager");
        assert_eq!(trace.dropped, 0);
        assert_eq!(trace.hot_path_reallocations, 0);
        trace.validate(true).unwrap();
        let hists = report.kernel_histograms().unwrap();
        assert_eq!(hists.total(), g.len() as u64);
    }

    #[test]
    fn untraced_run_reports_no_trace() {
        let a = random_matrix::<f64>(16, 16, 9);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let (_, report) = super::parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        assert!(report.trace.is_none());
        assert!(report.kernel_histograms().is_none());
    }

    #[test]
    fn imbalance_on_empty_worker_vec_is_zero() {
        // Regression: used to divide through an unwrap on `iter().max()`;
        // an empty report must report 0.0, not panic.
        let report = RunReport {
            tasks_per_worker: vec![],
            elapsed: Duration::ZERO,
            stage_wait: Duration::ZERO,
            commit_wait: Duration::ZERO,
            max_ready_depth: 0,
            policy: SchedulePolicy::Fifo,
            retries: 0,
            requeues: 0,
            worker_deaths: 0,
            drift_reweights: 0,
            trace: None,
            counters: HotPathCounters::default(),
        };
        assert_eq!(report.imbalance(), 0.0);
        assert_eq!(report.total_tasks(), 0);
        assert_eq!(report.cow_clones(), 0);
    }

    #[test]
    fn pool_runs_are_cow_free_with_sized_arenas() {
        // The zero-allocation contract: the pool's move-based staging never
        // hits the copy-on-write fallback, and per-worker arenas sized at
        // spawn never grow.
        let a = random_matrix::<f64>(24, 24, 41);
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        for workers in [1usize, 2, 4] {
            // Freshly-tiled input each run: no external handle may survive,
            // or the first take of each shared tile would count as a COW.
            let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
            let (_, report) = super::parallel_factor_traced(
                FactorState::new(tiled),
                &g,
                PoolConfig {
                    workers,
                    ..PoolConfig::default()
                },
            )
            .unwrap();
            assert_eq!(report.cow_clones(), 0, "workers={workers}");
            assert_eq!(report.counters.workspace_resizes, 0, "workers={workers}");
            assert!(report.counters.workspace_bytes > 0, "workers={workers}");
            assert!(report.counters.is_clean());
        }
    }

    #[test]
    fn per_call_workspace_policy_matches_per_worker_bitwise() {
        let a = random_matrix::<f64>(24, 24, 42);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(6, 6, EliminationOrder::FlatTs);
        let (per_worker, _) = super::parallel_factor_traced(
            FactorState::new(tiled.clone()),
            &g,
            PoolConfig {
                workers: 3,
                workspace: WorkspacePolicy::PerWorker,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        let (per_call, report) = super::parallel_factor_traced(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                workspace: WorkspacePolicy::PerCall,
                ..PoolConfig::default()
            },
        )
        .unwrap();
        assert_eq!(per_worker.tiles().to_matrix(), per_call.tiles().to_matrix());
        // PerCall tracks no arena: the throwaway scratch is invisible.
        assert_eq!(report.counters.workspace_bytes, 0);
        assert_eq!(report.cow_clones(), 0);
    }

    #[test]
    fn ft_mode_reports_clean_counters_after_recovery() {
        // stage_preserving's defensive clones are deliberate copies, not
        // COW fallbacks — recovery must not dirty the counter.
        let a = random_matrix::<f64>(16, 16, 43);
        let (tiled, g, seq_tiles) = sequential_tiles(&a, 4);
        let faults = ScriptedFaults::new().panic_on(2, 1).fail_on(5, 1);
        let (st, report) = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                ..PoolConfig::default()
            },
            Some(FaultTolerance::default()),
            Some(&faults),
        )
        .unwrap();
        assert_eq!(st.tiles().to_matrix(), seq_tiles);
        assert!(report.retries >= 2);
        assert_eq!(report.cow_clones(), 0);
        assert_eq!(report.counters.workspace_resizes, 0);
    }

    #[test]
    fn ft_recovers_from_worker_panic_bit_identical() {
        let a = random_matrix::<f64>(24, 24, 31);
        let (tiled, g, seq_tiles) = sequential_tiles(&a, 4);
        // Panic the first attempt of a mid-graph task; the worker dies,
        // the task is requeued, and the run completes on the survivors.
        let victim = g.len() / 2;
        let faults = ScriptedFaults::new().panic_on(victim, 1);
        let (st, report) = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                ..PoolConfig::default()
            },
            Some(FaultTolerance::default()),
            Some(&faults),
        )
        .unwrap();
        assert_eq!(st.tiles().to_matrix(), seq_tiles);
        assert_eq!(report.total_tasks() as usize, g.len());
        assert_eq!(report.worker_deaths, 1);
        assert_eq!(report.requeues, 1);
        assert_eq!(report.retries, 1);
    }

    #[test]
    fn ft_retries_transient_kernel_failures() {
        let a = random_matrix::<f64>(16, 16, 32);
        let (tiled, g, seq_tiles) = sequential_tiles(&a, 4);
        let faults = ScriptedFaults::new().fail_on(0, 2).fail_on(g.len() - 1, 1);
        let (st, report) = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            Some(FaultTolerance::default()),
            Some(&faults),
        )
        .unwrap();
        assert_eq!(st.tiles().to_matrix(), seq_tiles);
        assert_eq!(report.retries, 3);
        // Transient failures don't kill workers.
        assert_eq!(report.worker_deaths, 0);
        assert_eq!(report.requeues, 0);
    }

    #[test]
    fn ft_exhausted_retries_is_structured_error() {
        let a = random_matrix::<f64>(16, 16, 33);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let faults = ScriptedFaults::new().fail_on(1, 99);
        let err = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            Some(FaultTolerance {
                max_attempts: 2,
                ..FaultTolerance::default()
            }),
            Some(&faults),
        )
        .unwrap_err();
        match err {
            RuntimeError::RetriesExhausted { task, attempts, .. } => {
                assert_eq!(task, 1);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn ft_all_workers_dead_is_structured_error() {
        let a = random_matrix::<f64>(16, 16, 34);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        // Task 0 panics on every attempt: each try kills one worker, so a
        // 2-worker pool empties before the generous attempt budget does.
        let faults = ScriptedFaults::new().panic_on(0, 99);
        let err = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            Some(FaultTolerance {
                max_attempts: 99,
                ..FaultTolerance::default()
            }),
            Some(&faults),
        )
        .unwrap_err();
        match err {
            RuntimeError::AllWorkersDead { total, .. } => assert_eq!(total, g.len()),
            other => panic!("expected AllWorkersDead, got {other}"),
        }
    }

    #[test]
    fn fast_mode_panic_fails_cleanly_without_hanging() {
        // ft = None: the panic is isolated (no process abort, no hang) but
        // fatal, because destructive staging lost the task's inputs.
        let a = random_matrix::<f64>(16, 16, 35);
        let tiled = TiledMatrix::from_matrix(&a, 4).unwrap();
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let faults = ScriptedFaults::new().panic_on(2, 1);
        let err = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 3,
                ..PoolConfig::default()
            },
            None,
            Some(&faults),
        )
        .unwrap_err();
        match err {
            RuntimeError::TaskPanicked { task, .. } => assert_eq!(task, 2),
            other => panic!("expected TaskPanicked, got {other}"),
        }
    }

    #[test]
    fn ft_watchdog_retires_stalled_worker() {
        let a = random_matrix::<f64>(16, 16, 36);
        let (tiled, g, seq_tiles) = sequential_tiles(&a, 4);
        // One attempt sleeps far past the watchdog; the stalled worker is
        // retired, the task re-runs elsewhere, and the eventual late
        // result is deduplicated at the commit fence.
        let faults = ScriptedFaults::new().stall_on(1, 1, Duration::from_millis(400));
        let (st, report) = parallel_factor_ft(
            FactorState::new(tiled),
            &g,
            PoolConfig {
                workers: 2,
                ..PoolConfig::default()
            },
            Some(FaultTolerance {
                stall_timeout: Some(Duration::from_millis(50)),
                ..FaultTolerance::default()
            }),
            Some(&faults),
        )
        .unwrap();
        assert_eq!(st.tiles().to_matrix(), seq_tiles);
        assert_eq!(report.total_tasks() as usize, g.len());
        assert!(report.worker_deaths >= 1);
        assert!(report.requeues >= 1);
    }
}
