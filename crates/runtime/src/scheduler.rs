//! DAG readiness bookkeeping and dispatch ordering for the manager thread.

use std::collections::{BinaryHeap, VecDeque};
use tileqr_dag::{TaskGraph, TaskId};

/// Order in which the manager hands ready tasks to idle workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Discovery order: tasks dispatch in the order they became ready.
    /// This is the behaviour of naive worklist runtimes — and the
    /// anti-pattern that lets bulk trailing updates starve the panel
    /// factorizations on the critical path.
    #[default]
    Fifo,
    /// Highest static bottom level first: the ready task with the longest
    /// weighted path to a sink dispatches first, keeping the DAG's
    /// critical path (GEQRT/TSQRT chain) moving through the bulk updates.
    CriticalPath,
}

impl SchedulePolicy {
    /// Stable lowercase name, used in benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::CriticalPath => "critical_path",
        }
    }
}

/// Heap entry: priority-ordered, ties broken toward the lower task id so
/// dispatch order (hence the whole run) is deterministic.
#[derive(Debug, PartialEq)]
struct Prioritized {
    priority: f64,
    id: TaskId,
}

impl Eq for Prioritized {}

impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The manager's ready set, yielding tasks in [`SchedulePolicy`] order.
///
/// FIFO keeps a queue; critical-path keeps a max-heap over the static
/// priorities computed once per run. Also records the high-water depth of
/// the ready set — a cheap observability hook for how much dispatch slack
/// the scheduler actually had.
#[derive(Debug)]
pub struct ReadyQueue {
    policy: SchedulePolicy,
    fifo: VecDeque<TaskId>,
    heap: BinaryHeap<Prioritized>,
    priorities: Vec<f64>,
    max_depth: usize,
}

impl ReadyQueue {
    /// FIFO dispatch.
    pub fn fifo() -> Self {
        ReadyQueue {
            policy: SchedulePolicy::Fifo,
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            priorities: Vec::new(),
            max_depth: 0,
        }
    }

    /// Highest-priority-first dispatch; `priorities[id]` is task `id`'s
    /// static priority (e.g. its bottom level).
    pub fn critical_path(priorities: Vec<f64>) -> Self {
        ReadyQueue {
            policy: SchedulePolicy::CriticalPath,
            fifo: VecDeque::new(),
            heap: BinaryHeap::new(),
            priorities,
            max_depth: 0,
        }
    }

    /// Build a queue for `policy`, computing priorities from `graph` and a
    /// per-task weight when the policy needs them.
    pub fn for_policy(
        policy: SchedulePolicy,
        graph: &TaskGraph,
        weight: impl Fn(tileqr_dag::TaskKind) -> f64,
    ) -> Self {
        match policy {
            SchedulePolicy::Fifo => Self::fifo(),
            SchedulePolicy::CriticalPath => {
                Self::critical_path(tileqr_dag::critical_path::bottom_levels(graph, weight))
            }
        }
    }

    /// The policy this queue dispatches under.
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Add a ready task.
    pub fn push(&mut self, id: TaskId) {
        match self.policy {
            SchedulePolicy::Fifo => self.fifo.push_back(id),
            SchedulePolicy::CriticalPath => self.heap.push(Prioritized {
                priority: self.priorities.get(id).copied().unwrap_or(0.0),
                id,
            }),
        }
        self.max_depth = self.max_depth.max(self.len());
    }

    /// Remove and return the next task to dispatch.
    pub fn pop(&mut self) -> Option<TaskId> {
        match self.policy {
            SchedulePolicy::Fifo => self.fifo.pop_front(),
            SchedulePolicy::CriticalPath => self.heap.pop().map(|p| p.id),
        }
    }

    /// Tasks currently ready.
    pub fn len(&self) -> usize {
        match self.policy {
            SchedulePolicy::Fifo => self.fifo.len(),
            SchedulePolicy::CriticalPath => self.heap.len(),
        }
    }

    /// `true` when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the ready-set depth over the queue's lifetime.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

/// Tracks which tasks are ready as predecessors complete — the manager
/// thread's core data structure. Pure and single-threaded by design; the
/// pool owns the concurrency.
#[derive(Debug)]
pub struct ReadyTracker {
    remaining_preds: Vec<usize>,
    completed: usize,
    total: usize,
}

impl ReadyTracker {
    /// Initialize from a graph; [`ReadyTracker::initial_ready`] yields the
    /// sources.
    pub fn new(graph: &TaskGraph) -> Self {
        ReadyTracker {
            remaining_preds: graph.indegrees(),
            completed: 0,
            total: graph.len(),
        }
    }

    /// Tasks ready before anything has run.
    pub fn initial_ready(&self, graph: &TaskGraph) -> Vec<TaskId> {
        graph.sources()
    }

    /// Record `task` as complete; returns the tasks that just became
    /// ready.
    pub fn complete(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        self.completed += 1;
        let mut newly = Vec::new();
        for &s in graph.succs(task) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                newly.push(s);
            }
        }
        newly
    }

    /// `true` once every task has completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.total
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;

    #[test]
    fn drains_whole_graph() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        let mut frontier = tr.initial_ready(&g);
        let mut seen = 0;
        while let Some(t) = frontier.pop() {
            seen += 1;
            frontier.extend(tr.complete(&g, t));
        }
        assert_eq!(seen, g.len());
        assert!(tr.all_done());
    }

    #[test]
    fn readiness_only_after_all_preds() {
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        // Completing the first GEQRT readies its direct successors only.
        let newly = tr.complete(&g, 0);
        for &t in &newly {
            assert!(g.preds(t).iter().all(|&p| p == 0));
        }
        assert!(!tr.all_done());
    }

    #[test]
    fn priority_queue_orders_by_priority_then_id() {
        let mut q = ReadyQueue::critical_path(vec![1.0, 5.0, 3.0, 5.0]);
        for id in 0..4 {
            q.push(id);
        }
        // Highest priority first; equal priorities (1 and 3) break toward
        // the lower id so dispatch is deterministic.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 4);
    }

    #[test]
    fn fifo_queue_preserves_arrival_order() {
        let mut q = ReadyQueue::fifo();
        for id in [7, 3, 9] {
            q.push(id);
        }
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn priority_dispatch_never_readies_before_preds_complete() {
        // Drain a full DAG through tracker + priority queue exactly as the
        // manager does, and check the dispatch-safety invariant: when a
        // task pops, every predecessor must already have completed —
        // regardless of how the heap reorders the ready set.
        for order in [EliminationOrder::FlatTs, EliminationOrder::BinaryTt] {
            let g = TaskGraph::build(5, 5, order);
            // Adversarial priorities: *reverse* of program order, so the
            // heap aggressively prefers late tasks whenever it legally can.
            let priorities: Vec<f64> = (0..g.len()).map(|id| id as f64).collect();
            let mut q = ReadyQueue::critical_path(priorities);
            let mut tr = ReadyTracker::new(&g);
            let mut done = vec![false; g.len()];
            for t in tr.initial_ready(&g) {
                q.push(t);
            }
            let mut drained = 0;
            while let Some(t) = q.pop() {
                assert!(
                    g.preds(t).iter().all(|&p| done[p]),
                    "task {t} dispatched before a predecessor completed"
                );
                done[t] = true;
                drained += 1;
                for ready in tr.complete(&g, t) {
                    q.push(ready);
                }
            }
            assert_eq!(drained, g.len());
            assert!(tr.all_done());
        }
    }

    #[test]
    fn for_policy_uses_bottom_levels() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let q = ReadyQueue::for_policy(SchedulePolicy::CriticalPath, &g, |_| 1.0);
        assert_eq!(q.policy(), SchedulePolicy::CriticalPath);
        let f = ReadyQueue::for_policy(SchedulePolicy::Fifo, &g, |_| 1.0);
        assert_eq!(f.policy(), SchedulePolicy::Fifo);
    }
}
