//! DAG readiness bookkeeping for the manager thread.

use tileqr_dag::{TaskGraph, TaskId};

/// Tracks which tasks are ready as predecessors complete — the manager
/// thread's core data structure. Pure and single-threaded by design; the
/// pool owns the concurrency.
#[derive(Debug)]
pub struct ReadyTracker {
    remaining_preds: Vec<usize>,
    completed: usize,
    total: usize,
}

impl ReadyTracker {
    /// Initialize from a graph; [`ReadyTracker::initial_ready`] yields the
    /// sources.
    pub fn new(graph: &TaskGraph) -> Self {
        ReadyTracker {
            remaining_preds: graph.indegrees(),
            completed: 0,
            total: graph.len(),
        }
    }

    /// Tasks ready before anything has run.
    pub fn initial_ready(&self, graph: &TaskGraph) -> Vec<TaskId> {
        graph.sources()
    }

    /// Record `task` as complete; returns the tasks that just became
    /// ready.
    pub fn complete(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        self.completed += 1;
        let mut newly = Vec::new();
        for &s in graph.succs(task) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                newly.push(s);
            }
        }
        newly
    }

    /// `true` once every task has completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.total
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;

    #[test]
    fn drains_whole_graph() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        let mut frontier = tr.initial_ready(&g);
        let mut seen = 0;
        while let Some(t) = frontier.pop() {
            seen += 1;
            frontier.extend(tr.complete(&g, t));
        }
        assert_eq!(seen, g.len());
        assert!(tr.all_done());
    }

    #[test]
    fn readiness_only_after_all_preds() {
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        // Completing the first GEQRT readies its direct successors only.
        let newly = tr.complete(&g, 0);
        for &t in &newly {
            assert!(g.preds(t).iter().all(|&p| p == 0));
        }
        assert!(!tr.all_done());
    }
}
