//! DAG readiness bookkeeping and dispatch ordering for the manager thread.

use std::collections::{BinaryHeap, VecDeque};
use tileqr_dag::{TaskGraph, TaskId};
use tileqr_matrix::Rng64;

/// Order in which the manager hands ready tasks to idle workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Discovery order: tasks dispatch in the order they became ready.
    /// This is the behaviour of naive worklist runtimes — and the
    /// anti-pattern that lets bulk trailing updates starve the panel
    /// factorizations on the critical path.
    #[default]
    Fifo,
    /// Highest static bottom level first: the ready task with the longest
    /// weighted path to a sink dispatches first, keeping the DAG's
    /// critical path (GEQRT/TSQRT chain) moving through the bulk updates.
    CriticalPath,
}

impl SchedulePolicy {
    /// Stable lowercase name, used in benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            SchedulePolicy::Fifo => "fifo",
            SchedulePolicy::CriticalPath => "critical_path",
        }
    }
}

/// Dispatch orders beyond the production [`SchedulePolicy`] pair — the
/// hook the testkit's schedule explorer uses to drive the manager's ready
/// set through adversarial and seeded permutations of the legal
/// interleaving space. Every order is deterministic given its parameters,
/// so any failure reproduces from the order alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DispatchOrder {
    /// A production policy, unchanged.
    Policy(SchedulePolicy),
    /// Newest-ready-first: a stack, starving the oldest ready tasks —
    /// the single-worker-starvation adversary.
    Lifo,
    /// *Lowest* static bottom level first: the exact inverse of
    /// [`SchedulePolicy::CriticalPath`], aggressively deferring the
    /// critical path whenever legally possible.
    ReversePriority,
    /// Uniform seeded choice among the ready tasks; distinct seeds explore
    /// distinct legal interleavings reproducibly.
    Seeded(u64),
}

impl DispatchOrder {
    /// The production policy this order perturbs (used for reporting).
    pub fn base_policy(self) -> SchedulePolicy {
        match self {
            DispatchOrder::Policy(p) => p,
            DispatchOrder::Lifo | DispatchOrder::Seeded(_) => SchedulePolicy::Fifo,
            DispatchOrder::ReversePriority => SchedulePolicy::CriticalPath,
        }
    }

    /// Stable lowercase name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            DispatchOrder::Policy(p) => p.name(),
            DispatchOrder::Lifo => "lifo",
            DispatchOrder::ReversePriority => "reverse_priority",
            DispatchOrder::Seeded(_) => "seeded",
        }
    }
}

/// Heap entry: priority-ordered, ties broken toward the lower task id so
/// dispatch order (hence the whole run) is deterministic.
#[derive(Debug, PartialEq)]
struct Prioritized {
    priority: f64,
    id: TaskId,
}

impl Eq for Prioritized {}

impl Ord for Prioritized {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .total_cmp(&other.priority)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Prioritized {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Internal representation of the ready set, one variant per dispatch
/// discipline.
#[derive(Debug)]
enum QueueRepr {
    Fifo(VecDeque<TaskId>),
    Lifo(Vec<TaskId>),
    /// `sign` is `+1.0` for highest-first (critical path) and `-1.0` for
    /// lowest-first (reverse priority).
    Heap {
        heap: BinaryHeap<Prioritized>,
        priorities: Vec<f64>,
        sign: f64,
    },
    Seeded {
        rng: Rng64,
        items: Vec<TaskId>,
    },
}

/// The manager's ready set, yielding tasks in [`DispatchOrder`] order.
///
/// FIFO keeps a queue; critical-path keeps a max-heap over the static
/// priorities computed once per run; the exploration orders keep a stack,
/// an inverted heap, or a seeded grab bag. Also records the high-water
/// depth of the ready set — a cheap observability hook for how much
/// dispatch slack the scheduler actually had.
#[derive(Debug)]
pub struct ReadyQueue {
    order: DispatchOrder,
    repr: QueueRepr,
    max_depth: usize,
}

impl ReadyQueue {
    /// FIFO dispatch.
    pub fn fifo() -> Self {
        ReadyQueue {
            order: DispatchOrder::Policy(SchedulePolicy::Fifo),
            repr: QueueRepr::Fifo(VecDeque::new()),
            max_depth: 0,
        }
    }

    /// Newest-ready-first dispatch (exploration adversary).
    pub fn lifo() -> Self {
        ReadyQueue {
            order: DispatchOrder::Lifo,
            repr: QueueRepr::Lifo(Vec::new()),
            max_depth: 0,
        }
    }

    /// Highest-priority-first dispatch; `priorities[id]` is task `id`'s
    /// static priority (e.g. its bottom level).
    pub fn critical_path(priorities: Vec<f64>) -> Self {
        ReadyQueue {
            order: DispatchOrder::Policy(SchedulePolicy::CriticalPath),
            repr: QueueRepr::Heap {
                heap: BinaryHeap::new(),
                priorities,
                sign: 1.0,
            },
            max_depth: 0,
        }
    }

    /// *Lowest*-priority-first dispatch over the same priorities — the
    /// exact inverse of [`ReadyQueue::critical_path`].
    pub fn reverse_priority(priorities: Vec<f64>) -> Self {
        ReadyQueue {
            order: DispatchOrder::ReversePriority,
            repr: QueueRepr::Heap {
                heap: BinaryHeap::new(),
                priorities,
                sign: -1.0,
            },
            max_depth: 0,
        }
    }

    /// Seeded uniform dispatch: each pop draws one of the ready tasks via
    /// a deterministic [`Rng64`] stream.
    pub fn seeded(seed: u64) -> Self {
        ReadyQueue {
            order: DispatchOrder::Seeded(seed),
            repr: QueueRepr::Seeded {
                rng: Rng64::seed_from_u64(seed),
                items: Vec::new(),
            },
            max_depth: 0,
        }
    }

    /// Build a queue for `policy`, computing priorities from `graph` and a
    /// per-task weight when the policy needs them.
    pub fn for_policy(
        policy: SchedulePolicy,
        graph: &TaskGraph,
        weight: impl Fn(tileqr_dag::TaskKind) -> f64,
    ) -> Self {
        Self::for_order(DispatchOrder::Policy(policy), graph, weight)
    }

    /// Build a queue for any [`DispatchOrder`], computing priorities from
    /// `graph` and a per-task weight when the order needs them.
    pub fn for_order(
        order: DispatchOrder,
        graph: &TaskGraph,
        weight: impl Fn(tileqr_dag::TaskKind) -> f64,
    ) -> Self {
        match order {
            DispatchOrder::Policy(SchedulePolicy::Fifo) => Self::fifo(),
            DispatchOrder::Policy(SchedulePolicy::CriticalPath) => {
                Self::critical_path(tileqr_dag::critical_path::bottom_levels(graph, weight))
            }
            DispatchOrder::Lifo => Self::lifo(),
            DispatchOrder::ReversePriority => {
                Self::reverse_priority(tileqr_dag::critical_path::bottom_levels(graph, weight))
            }
            DispatchOrder::Seeded(seed) => Self::seeded(seed),
        }
    }

    /// The policy this queue dispatches under (exploration orders report
    /// the production policy they perturb).
    pub fn policy(&self) -> SchedulePolicy {
        self.order.base_policy()
    }

    /// The full dispatch order, including exploration variants.
    pub fn order(&self) -> DispatchOrder {
        self.order
    }

    /// Add a ready task.
    pub fn push(&mut self, id: TaskId) {
        match &mut self.repr {
            QueueRepr::Fifo(q) => q.push_back(id),
            QueueRepr::Lifo(s) => s.push(id),
            QueueRepr::Heap {
                heap,
                priorities,
                sign,
            } => heap.push(Prioritized {
                priority: *sign * priorities.get(id).copied().unwrap_or(0.0),
                id,
            }),
            QueueRepr::Seeded { items, .. } => items.push(id),
        }
        self.max_depth = self.max_depth.max(self.len());
    }

    /// Remove and return the next task to dispatch.
    pub fn pop(&mut self) -> Option<TaskId> {
        match &mut self.repr {
            QueueRepr::Fifo(q) => q.pop_front(),
            QueueRepr::Lifo(s) => s.pop(),
            QueueRepr::Heap { heap, .. } => heap.pop().map(|p| p.id),
            QueueRepr::Seeded { rng, items } => {
                if items.is_empty() {
                    None
                } else {
                    let idx = (rng.next_u64() % items.len() as u64) as usize;
                    Some(items.swap_remove(idx))
                }
            }
        }
    }

    /// Tasks currently ready.
    pub fn len(&self) -> usize {
        match &self.repr {
            QueueRepr::Fifo(q) => q.len(),
            QueueRepr::Lifo(s) => s.len(),
            QueueRepr::Heap { heap, .. } => heap.len(),
            QueueRepr::Seeded { items, .. } => items.len(),
        }
    }

    /// `true` when no task is ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Swap in a new priority table mid-run and rebuild the heap over the
    /// currently-ready tasks — the drift re-weighting hook. Priority-based
    /// queues drain and re-push every ready entry under the new table;
    /// order-insensitive disciplines (FIFO/LIFO/seeded) ignore the call.
    /// Returns `true` when the queue actually re-ranked.
    pub fn reprioritize(&mut self, new_priorities: Vec<f64>) -> bool {
        match &mut self.repr {
            QueueRepr::Heap {
                heap,
                priorities,
                sign,
            } => {
                *priorities = new_priorities;
                let old = std::mem::take(heap);
                for entry in old {
                    heap.push(Prioritized {
                        priority: *sign * priorities.get(entry.id).copied().unwrap_or(0.0),
                        id: entry.id,
                    });
                }
                true
            }
            _ => false,
        }
    }

    /// High-water mark of the ready-set depth over the queue's lifetime.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

/// Tracks which tasks are ready as predecessors complete — the manager
/// thread's core data structure. Pure and single-threaded by design; the
/// pool owns the concurrency.
#[derive(Debug)]
pub struct ReadyTracker {
    remaining_preds: Vec<usize>,
    completed: usize,
    total: usize,
}

impl ReadyTracker {
    /// Initialize from a graph; [`ReadyTracker::initial_ready`] yields the
    /// sources.
    pub fn new(graph: &TaskGraph) -> Self {
        ReadyTracker {
            remaining_preds: graph.indegrees(),
            completed: 0,
            total: graph.len(),
        }
    }

    /// Tasks ready before anything has run.
    pub fn initial_ready(&self, graph: &TaskGraph) -> Vec<TaskId> {
        graph.sources()
    }

    /// Record `task` as complete; returns the tasks that just became
    /// ready.
    pub fn complete(&mut self, graph: &TaskGraph, task: TaskId) -> Vec<TaskId> {
        self.completed += 1;
        let mut newly = Vec::new();
        for &s in graph.succs(task) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                newly.push(s);
            }
        }
        newly
    }

    /// `true` once every task has completed.
    pub fn all_done(&self) -> bool {
        self.completed == self.total
    }

    /// Number of completed tasks.
    pub fn completed(&self) -> usize {
        self.completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_dag::EliminationOrder;

    #[test]
    fn drains_whole_graph() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        let mut frontier = tr.initial_ready(&g);
        let mut seen = 0;
        while let Some(t) = frontier.pop() {
            seen += 1;
            frontier.extend(tr.complete(&g, t));
        }
        assert_eq!(seen, g.len());
        assert!(tr.all_done());
    }

    #[test]
    fn readiness_only_after_all_preds() {
        let g = TaskGraph::build(3, 3, EliminationOrder::FlatTs);
        let mut tr = ReadyTracker::new(&g);
        // Completing the first GEQRT readies its direct successors only.
        let newly = tr.complete(&g, 0);
        for &t in &newly {
            assert!(g.preds(t).iter().all(|&p| p == 0));
        }
        assert!(!tr.all_done());
    }

    #[test]
    fn priority_queue_orders_by_priority_then_id() {
        let mut q = ReadyQueue::critical_path(vec![1.0, 5.0, 3.0, 5.0]);
        for id in 0..4 {
            q.push(id);
        }
        // Highest priority first; equal priorities (1 and 3) break toward
        // the lower id so dispatch is deterministic.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
        assert_eq!(q.max_depth(), 4);
    }

    #[test]
    fn fifo_queue_preserves_arrival_order() {
        let mut q = ReadyQueue::fifo();
        for id in [7, 3, 9] {
            q.push(id);
        }
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(9));
    }

    #[test]
    fn priority_dispatch_never_readies_before_preds_complete() {
        // Drain a full DAG through tracker + priority queue exactly as the
        // manager does, and check the dispatch-safety invariant: when a
        // task pops, every predecessor must already have completed —
        // regardless of how the heap reorders the ready set.
        for order in [EliminationOrder::FlatTs, EliminationOrder::BinaryTt] {
            let g = TaskGraph::build(5, 5, order);
            // Adversarial priorities: *reverse* of program order, so the
            // heap aggressively prefers late tasks whenever it legally can.
            let priorities: Vec<f64> = (0..g.len()).map(|id| id as f64).collect();
            let mut q = ReadyQueue::critical_path(priorities);
            let mut tr = ReadyTracker::new(&g);
            let mut done = vec![false; g.len()];
            for t in tr.initial_ready(&g) {
                q.push(t);
            }
            let mut drained = 0;
            while let Some(t) = q.pop() {
                assert!(
                    g.preds(t).iter().all(|&p| done[p]),
                    "task {t} dispatched before a predecessor completed"
                );
                done[t] = true;
                drained += 1;
                for ready in tr.complete(&g, t) {
                    q.push(ready);
                }
            }
            assert_eq!(drained, g.len());
            assert!(tr.all_done());
        }
    }

    #[test]
    fn reverse_priority_pops_lowest_first() {
        let mut q = ReadyQueue::reverse_priority(vec![1.0, 5.0, 3.0, 5.0]);
        for id in 0..4 {
            q.push(id);
        }
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(2));
        // Equal priorities still break toward the lower id.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.order(), DispatchOrder::ReversePriority);
        assert_eq!(q.policy(), SchedulePolicy::CriticalPath);
    }

    #[test]
    fn lifo_pops_newest_first() {
        let mut q = ReadyQueue::lifo();
        for id in [7, 3, 9] {
            q.push(id);
        }
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.policy(), SchedulePolicy::Fifo);
    }

    #[test]
    fn seeded_is_deterministic_and_seed_sensitive() {
        let drain = |seed: u64| {
            let mut q = ReadyQueue::seeded(seed);
            for id in 0..32 {
                q.push(id);
            }
            let mut out = Vec::new();
            while let Some(t) = q.pop() {
                out.push(t);
            }
            out
        };
        assert_eq!(drain(1), drain(1));
        assert_ne!(drain(1), drain(2));
        let mut sorted = drain(3);
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn every_order_drains_a_dag_safely() {
        // The dispatch-safety invariant must hold under every exploration
        // order, not just the production policies.
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let orders = [
            DispatchOrder::Policy(SchedulePolicy::Fifo),
            DispatchOrder::Policy(SchedulePolicy::CriticalPath),
            DispatchOrder::Lifo,
            DispatchOrder::ReversePriority,
            DispatchOrder::Seeded(99),
        ];
        for order in orders {
            let mut q = ReadyQueue::for_order(order, &g, |_| 1.0);
            let mut tr = ReadyTracker::new(&g);
            let mut done = vec![false; g.len()];
            for t in tr.initial_ready(&g) {
                q.push(t);
            }
            let mut drained = 0;
            while let Some(t) = q.pop() {
                assert!(
                    g.preds(t).iter().all(|&p| done[p]),
                    "{order:?}: task {t} dispatched before a predecessor"
                );
                done[t] = true;
                drained += 1;
                for ready in tr.complete(&g, t) {
                    q.push(ready);
                }
            }
            assert_eq!(drained, g.len(), "{order:?}");
        }
    }

    #[test]
    fn reprioritize_reranks_ready_tasks_in_place() {
        let mut q = ReadyQueue::critical_path(vec![1.0, 2.0, 3.0, 4.0]);
        for id in 0..4 {
            q.push(id);
        }
        // Invert the table mid-run: ranks must follow the new priorities.
        assert!(q.reprioritize(vec![4.0, 3.0, 2.0, 1.0]));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));

        // FIFO is order-insensitive: the call is a no-op.
        let mut f = ReadyQueue::fifo();
        f.push(7);
        f.push(3);
        assert!(!f.reprioritize(vec![0.0; 8]));
        assert_eq!(f.pop(), Some(7));
        assert_eq!(f.pop(), Some(3));
    }

    #[test]
    fn for_policy_uses_bottom_levels() {
        let g = TaskGraph::build(4, 4, EliminationOrder::FlatTs);
        let q = ReadyQueue::for_policy(SchedulePolicy::CriticalPath, &g, |_| 1.0);
        assert_eq!(q.policy(), SchedulePolicy::CriticalPath);
        let f = ReadyQueue::for_policy(SchedulePolicy::Fifo, &g, |_| 1.0);
        assert_eq!(f.policy(), SchedulePolicy::Fifo);
    }
}
