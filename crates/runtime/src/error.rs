//! Structured errors for the parallel runtime.
//!
//! The manager loop used to die on an `unwrap`/`expect` chain the moment
//! anything unusual happened (worker panic, channel closure). Every one
//! of those conditions is now a [`RuntimeError`] variant, so callers can
//! distinguish "a kernel reported a numerical problem" from "a worker
//! thread died" from "the retry budget ran out" — and the legacy
//! [`tileqr_matrix::Result`]-returning entry points keep working through
//! the `From<RuntimeError> for MatrixError` impl.

use std::fmt;
use tileqr_dag::TaskId;
use tileqr_matrix::MatrixError;

/// Why a parallel factorization run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A kernel returned a numerical error (fast path: fatal immediately;
    /// fault-tolerant path: fatal once retries are exhausted).
    Kernel {
        /// Task whose kernel failed.
        task: TaskId,
        /// The underlying kernel error.
        source: MatrixError,
    },
    /// A worker thread panicked while executing a task. In the fast path
    /// this aborts the run (staging is destructive, so the task's inputs
    /// are gone); the fault-tolerant path retires the worker and retries
    /// the task instead, surfacing this only through `RunReport`.
    TaskPanicked {
        /// Task being executed when the panic fired.
        task: TaskId,
        /// Worker that panicked.
        worker: usize,
        /// Panic payload rendered to text (when downcastable).
        message: String,
    },
    /// A task failed on every allowed attempt.
    RetriesExhausted {
        /// The task that kept failing.
        task: TaskId,
        /// Attempts consumed (equals the configured `max_attempts`).
        attempts: u32,
        /// Diagnostic from the final failed attempt.
        last: String,
    },
    /// Every worker died (panicked or stalled past the watchdog) before
    /// the DAG finished.
    AllWorkersDead {
        /// Tasks committed before the pool emptied.
        completed: usize,
        /// Total tasks in the graph.
        total: usize,
    },
    /// The completion channel closed while tasks were still in flight —
    /// worker threads vanished without reporting.
    Disconnected {
        /// Tasks that were dispatched but never reported back.
        in_flight: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Kernel { task, source } => {
                write!(f, "kernel error on task {task}: {source}")
            }
            RuntimeError::TaskPanicked {
                task,
                worker,
                message,
            } => write!(f, "worker {worker} panicked on task {task}: {message}"),
            RuntimeError::RetriesExhausted {
                task,
                attempts,
                last,
            } => write!(
                f,
                "task {task} failed on all {attempts} attempts; last error: {last}"
            ),
            RuntimeError::AllWorkersDead { completed, total } => write!(
                f,
                "all workers died with {completed}/{total} tasks committed"
            ),
            RuntimeError::Disconnected { in_flight } => write!(
                f,
                "completion channel closed with {in_flight} tasks in flight"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    /// Kernel failures chain to the underlying [`MatrixError`] so
    /// `anyhow`-style walkers (`Error::source`) can reach the numerical
    /// root cause.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Kernel { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<RuntimeError> for MatrixError {
    fn from(e: RuntimeError) -> Self {
        match e {
            // Preserve the numerical error for callers matching on it.
            RuntimeError::Kernel { source, .. } => source,
            other => MatrixError::Runtime {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_task() {
        let e = RuntimeError::TaskPanicked {
            task: 7,
            worker: 2,
            message: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("task 7") && s.contains("worker 2") && s.contains("boom"));
    }

    #[test]
    fn error_trait_composes_with_question_mark() {
        // `RuntimeError` must flow through `?` into a boxed error and
        // expose its numerical root cause via the `source()` chain.
        fn failing() -> Result<(), Box<dyn std::error::Error>> {
            Err(RuntimeError::Kernel {
                task: 4,
                source: MatrixError::Singular { index: 2 },
            })?;
            Ok(())
        }
        let boxed = failing().unwrap_err();
        let runtime = boxed.downcast_ref::<RuntimeError>().expect("runtime error");
        let root = std::error::Error::source(runtime).expect("kernel errors chain");
        assert!(root.to_string().contains("singular"));
        // Non-kernel variants terminate the chain.
        let dead = RuntimeError::AllWorkersDead {
            completed: 1,
            total: 2,
        };
        assert!(std::error::Error::source(&dead).is_none());
    }

    #[test]
    fn kernel_errors_round_trip_to_matrix_error() {
        let src = MatrixError::Singular { index: 3 };
        let e = RuntimeError::Kernel {
            task: 1,
            source: src.clone(),
        };
        assert_eq!(MatrixError::from(e), src);
        let dead = RuntimeError::AllWorkersDead {
            completed: 4,
            total: 9,
        };
        match MatrixError::from(dead) {
            MatrixError::Runtime { reason } => assert!(reason.contains("4/9")),
            other => panic!("expected Runtime variant, got {other:?}"),
        }
    }
}
