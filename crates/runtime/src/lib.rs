//! Shared-memory parallel tiled-QR runtime.
//!
//! Mirrors the paper's execution structure (Fig. 7) on host threads: a
//! **manager thread** tracks DAG readiness and hands tasks out; a pool of
//! **computing threads** executes kernels. On the paper's machine the
//! computing threads drive GPUs; here they drive host cores directly —
//! the heterogeneous behaviour is studied in the simulator crates, while
//! this runtime demonstrates real parallel speedup of the same DAG on the
//! hardware we do have.
//!
//! Concurrency design: the [`FactorState`](tileqr_kernels::exec::FactorState) sits behind a
//! [`parking_lot::Mutex`]; a worker holds the lock only to *stage* a task
//! (move the written tiles out, clone the read tiles) and later to
//! *commit* the results — the `O(b³)` kernel itself runs lock-free on
//! owned data. Readiness bookkeeping lives in the manager loop, fed by a
//! completion channel, so no atomics are spread through the data
//! structures. Determinism of the *result* (not the schedule) is
//! guaranteed because every task writes a disjoint tile set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pool;
mod scheduler;

pub use pool::{parallel_factor, parallel_factor_traced, PoolConfig, RunReport};
pub use scheduler::ReadyTracker;
