//! Shared-memory parallel tiled-QR runtime.
//!
//! Mirrors the paper's execution structure (Fig. 7) on host threads: a
//! **manager thread** tracks DAG readiness and hands tasks out; a pool of
//! **computing threads** executes kernels. On the paper's machine the
//! computing threads drive GPUs; here they drive host cores directly —
//! the heterogeneous behaviour is studied in the simulator crates, while
//! this runtime demonstrates real parallel speedup of the same DAG on the
//! hardware we do have.
//!
//! Concurrency design: tiles and T factors live in per-slot locked cells
//! of a [`SharedFactorState`](tileqr_kernels::exec::SharedFactorState);
//! *staging* a task clones `Arc` handles for its read inputs and swaps its
//! written tiles out, so each critical section is a pointer exchange on one
//! slot — the `O(b³)` kernel itself runs lock-free on owned data and
//! *commit* swaps results back in. Readiness bookkeeping lives in the
//! manager loop ([`ReadyTracker`]), fed by a completion channel; the
//! manager orders the ready set by [`SchedulePolicy`] — FIFO or highest
//! static bottom level first ([`ReadyQueue`]). Determinism of the *result*
//! (not the schedule) is guaranteed because every task writes a disjoint
//! tile set.
//!
//! Fault tolerance: workers run under `catch_unwind`, so a panic never
//! hangs or aborts the process. [`parallel_factor_ft`] goes further —
//! non-destructive staging plus a manager-side commit fence make task
//! re-execution idempotent, so panicked or stalled workers are retired
//! and their tasks retried (bounded attempts, deterministic backoff)
//! while the run continues degraded. Failures surface as structured
//! [`RuntimeError`]s and recovery activity is reported in
//! [`RunReport`]'s `retries` / `requeues` / `worker_deaths` fields.
//!
//! Observability: enabling [`TraceConfig`] in the [`PoolConfig`] makes
//! every worker record its task lifecycle (stage/compute/commit spans,
//! plus manager-side ready/dispatch/recovery instants) into a per-thread
//! ring buffer, merged at join into the unified
//! [`Trace`](tileqr_obs::Trace) carried by [`RunReport::trace`] — see
//! the `tileqr-obs` crate for Chrome-trace export, latency histograms,
//! and sim-vs-real calibration built on top.
//!
//! Service mode: [`QrService`] keeps the pool *resident* and serves a
//! stream of factor / solve / apply jobs, interleaving many job DAGs
//! with weighted fair-share scheduling, priority classes, admission
//! control, and small-job batching — see the [`service`] module docs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod pool;
pub mod recovery;
mod scheduler;
pub mod service;

pub use error::RuntimeError;
pub use pool::{
    parallel_factor, parallel_factor_ft, parallel_factor_ordered, parallel_factor_traced,
    PoolConfig, RunReport,
};
pub use recovery::{FaultInjector, FaultTolerance, InjectedFault, NoFaults, ScriptedFaults};
pub use scheduler::{DispatchOrder, ReadyQueue, ReadyTracker, SchedulePolicy};
pub use service::{
    FactoredJob, JobHandle, JobId, JobOutput, JobResult, JobSpec, JobTuning, PriorityClass,
    QrService, ServiceConfig, ServiceError, ServiceStats, TreeSelector, WaitTimeout,
};
pub use tileqr_dag::{ClassCosts, CostCurve, CostModel};
pub use tileqr_obs::{DriftConfig, TraceConfig};
