//! `QrService`: a resident multi-matrix throughput service.
//!
//! Where [`parallel_factor`](crate::parallel_factor) spins a pool up and
//! down around one matrix, the service keeps a **long-lived worker pool**
//! and accepts a *stream* of jobs — factor, least-squares solve, Q-apply —
//! through a submission handle. Tasks from many concurrent job DAGs are
//! interleaved through one manager-owned ready structure with per-job
//! **fair-share accounting** (weighted virtual time, one weight per
//! [`PriorityClass`]), so a flood of bulk work cannot starve interactive
//! jobs.
//!
//! Architecture (one manager thread, `workers` computing threads):
//!
//! * **Admission**: `max_in_flight` bounds submitted-but-unfinished jobs.
//!   [`QrService::submit`] blocks for a slot (backpressure);
//!   [`QrService::try_submit`] fails fast with [`ServiceError::Saturated`].
//! * **Fair share**: each job carries a virtual time; dispatching a task
//!   advances it by `task_flops / class_weight`. The manager always serves
//!   the backlogged job with the smallest virtual time, and a newly
//!   admitted job starts at the *minimum* virtual time of the current
//!   backlog — it can never be scheduled behind work that arrived after
//!   it, and a heavy job cannot monopolise the pool.
//! * **Batching**: jobs whose DAG is at most `batch_max_tasks` tasks are
//!   grouped into a composite unit executed sequentially on one worker —
//!   per-task dispatch overhead is the dominant cost at that size. A
//!   batch flushes when `batch_max_jobs` accumulate or when workers would
//!   otherwise idle; pending batches compete in the same virtual-time
//!   order as regular jobs (keyed by their oldest member), so batching
//!   adds no starvation risk.
//! * **Execution**: identical to the fault-tolerant pool path —
//!   non-destructive staging plus a manager-side commit fence make task
//!   re-execution idempotent, so the bit-identity guarantee survives DAG
//!   interleaving: every task still writes a disjoint tile set of its own
//!   job's [`SharedFactorState`].
//! * **Recovery**: a worker panic retires only that thread; the manager
//!   respawns the slot (the pool never shrinks) and charges the retry to
//!   the *victim job's* attempt budget alone. Other in-flight jobs are
//!   untouched. Exhausted budgets fail that one job with a structured
//!   [`ServiceError::Runtime`]. When
//!   [`FaultTolerance::stall_timeout`] is set, a **stall watchdog** in
//!   the dispatch loop retires any worker whose in-flight task exceeds
//!   the bound, respawns the slot, and requeues the task exactly once
//!   through the same retry path.
//! * **Job lifecycle**: a job can carry a [`JobSpec::deadline`]; expired
//!   queued jobs are **shed** before they consume worker time
//!   ([`ServiceError::DeadlineExceeded`]). [`JobHandle::cancel`]
//!   cooperatively drains a job at the fenced-commit boundary —
//!   in-flight attempts retire cleanly, the admission slot and WFQ state
//!   are released, and concurrent jobs are untouched
//!   ([`ServiceError::Cancelled`]).
//! * **Poison containment**: submission rejects non-finite inputs
//!   synchronously, and the commit fence scans panel-factor outputs —
//!   a NaN/Inf produced mid-run fails only the victim job with a
//!   structured [`ServiceError::NumericalBreakdown`] instead of
//!   propagating through downstream tiles.
//! * **Shutdown**: [`QrService::shutdown`] (and `Drop`) closes admission,
//!   drains every queued and in-flight job to its completion channel —
//!   zero lost jobs — then joins all threads.
//!
//! Instrumentation flows through the existing `tileqr-obs` types: per-job
//! task-compute [`LatencyHistogram`]s ride on each [`JobResult`], and
//! service-wide queue-wait / latency histograms plus queue-depth
//! high-water marks are readable at any time via [`QrService::stats`].

use crate::error::RuntimeError;
use crate::pool::{model_weight, panic_message, RunReport};
use crate::recovery::{FaultInjector, FaultTolerance, InjectedFault};
use crate::scheduler::{ReadyQueue, ReadyTracker, SchedulePolicy};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tileqr_dag::{
    bottom_levels, class_slot, ClassCosts, CostModel, EliminationOrder, EliminationTree, TaskGraph,
    TaskId, TaskKind, TreePolicy,
};
use tileqr_kernels::exec::{
    apply_q_dense, apply_qt_dense, CompletedTask, FactorState, SharedFactorState,
};
use tileqr_kernels::{Workspace, WorkspacePolicy};
use tileqr_matrix::{Matrix, MatrixError, Scalar, TiledMatrix};
use tileqr_obs::{
    DriftConfig, DriftDetector, HotPathCounters, LatencyHistogram, LifecycleCounters,
};

/// Job identifier, unique per service instance (1-based).
pub type JobId = u64;

/// Scheduling class of a job; determines its fair-share weight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PriorityClass {
    /// Latency-sensitive foreground work (weight 4).
    Interactive,
    /// Default class (weight 2).
    #[default]
    Standard,
    /// Throughput-oriented background work (weight 1).
    Bulk,
}

impl PriorityClass {
    /// Fair-share weight: a job's virtual time advances by
    /// `task_cost / weight`, so higher weights receive proportionally
    /// more service under contention.
    pub fn weight(self) -> f64 {
        match self {
            PriorityClass::Interactive => 4.0,
            PriorityClass::Standard => 2.0,
            PriorityClass::Bulk => 1.0,
        }
    }

    /// Stable lowercase name (used in stats and bench output).
    pub fn name(self) -> &'static str {
        match self {
            PriorityClass::Interactive => "interactive",
            PriorityClass::Standard => "standard",
            PriorityClass::Bulk => "bulk",
        }
    }

    fn index(self) -> usize {
        match self {
            PriorityClass::Interactive => 0,
            PriorityClass::Standard => 1,
            PriorityClass::Bulk => 2,
        }
    }
}

/// Configuration of a [`QrService`] instance.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Computing threads. `0` means one per available core.
    pub workers: usize,
    /// Per-job ready-set ordering (FIFO or critical-path priority).
    pub policy: SchedulePolicy,
    /// Admission bound: maximum submitted-but-unfinished jobs. `0` means
    /// unbounded (no backpressure).
    pub max_in_flight: usize,
    /// Jobs whose DAG has at most this many tasks are batched into
    /// composite units instead of being interleaved task-by-task.
    /// `0` disables batching.
    pub batch_max_tasks: usize,
    /// A pending batch flushes once this many small jobs accumulate
    /// (it also flushes early whenever workers would otherwise idle).
    /// Values `<= 1` disable batching.
    pub batch_max_jobs: usize,
    /// Per-job retry budget and backoff for panicked or transiently
    /// failed tasks.
    pub fault_tolerance: FaultTolerance,
    /// Kernel-scratch strategy for the resident workers.
    pub workspace: WorkspacePolicy,
    /// Default task-cost model for bottom-level priorities and WFQ
    /// virtual time (per-job [`JobSpec::cost_model`] overrides it).
    pub cost: CostModel,
    /// Per-job performance-drift re-weighting (needs a calibrated cost
    /// model, the service default or a per-job override). Off by default.
    pub drift: DriftConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: 0,
            policy: SchedulePolicy::default(),
            max_in_flight: 64,
            batch_max_tasks: 4,
            batch_max_jobs: 8,
            fault_tolerance: FaultTolerance::default(),
            workspace: WorkspacePolicy::default(),
            cost: CostModel::default(),
            drift: DriftConfig::default(),
        }
    }
}

impl ServiceConfig {
    /// Resolve `workers == 0` to the host's available parallelism.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |v| v.get())
        }
    }

    fn batching_enabled(&self) -> bool {
        self.batch_max_tasks > 0 && self.batch_max_jobs > 1
    }
}

/// What a job computes once its factorization DAG has completed.
enum Payload<T: Scalar> {
    Factor,
    Solve { rhs: Vec<T> },
    Apply { c: Matrix<T>, transpose: bool },
}

/// A single unit of work submitted to a [`QrService`].
///
/// Built with [`JobSpec::factor`] / [`JobSpec::solve`] /
/// [`JobSpec::apply_qt`] / [`JobSpec::apply_q`] plus builder-style
/// options mirroring `QrOptions`.
pub struct JobSpec<T: Scalar> {
    a: Matrix<T>,
    payload: Payload<T>,
    tile_size: usize,
    tree: TreePolicy,
    inner_block: Option<usize>,
    priority: PriorityClass,
    deadline: Option<Duration>,
    injector: Option<Arc<dyn FaultInjector + Send + Sync>>,
    cost: Option<CostModel>,
    tuning: JobTuning,
}

impl<T: Scalar> JobSpec<T> {
    fn new(a: Matrix<T>, payload: Payload<T>) -> Self {
        JobSpec {
            a,
            payload,
            tile_size: 16,
            tree: TreePolicy::default(),
            inner_block: None,
            priority: PriorityClass::Standard,
            deadline: None,
            injector: None,
            cost: None,
            tuning: JobTuning::Standard,
        }
    }

    /// Factor `a` (QR of an `m x n` matrix, `m >= n`).
    pub fn factor(a: Matrix<T>) -> Self {
        Self::new(a, Payload::Factor)
    }

    /// Factor `a` and solve `min ||a x - rhs||_2` (`rhs.len() == a.rows()`).
    pub fn solve(a: Matrix<T>, rhs: Vec<T>) -> Self {
        Self::new(a, Payload::Solve { rhs })
    }

    /// Factor `a` and compute `Qᵀ c` (`c.rows() == a.rows()`).
    pub fn apply_qt(a: Matrix<T>, c: Matrix<T>) -> Self {
        Self::new(a, Payload::Apply { c, transpose: true })
    }

    /// Factor `a` and compute `Q c` (`c.rows() == a.rows()`).
    pub fn apply_q(a: Matrix<T>, c: Matrix<T>) -> Self {
        Self::new(
            a,
            Payload::Apply {
                c,
                transpose: false,
            },
        )
    }

    /// Tile size `b` (default 16, clamped to at least 1).
    pub fn tile_size(mut self, b: usize) -> Self {
        self.tile_size = b.max(1);
        self
    }

    /// Elimination order of the task DAG (default [`EliminationOrder::FlatTs`]).
    /// Shorthand for [`JobSpec::tree`] with the corresponding fixed
    /// [`EliminationTree`].
    pub fn order(mut self, order: EliminationOrder) -> Self {
        self.tree = TreePolicy::Fixed(order.into());
        self
    }

    /// Elimination-tree policy for the task DAG (default: fixed flat TS
    /// chain). [`TreePolicy::Auto`] defers the choice to the service's
    /// per-job planner: the calibrated selector installed via
    /// [`QrService::start_with_tree_selector`] when present, otherwise
    /// the geometry heuristic [`EliminationTree::default_for`].
    pub fn tree(mut self, policy: TreePolicy) -> Self {
        self.tree = policy;
        self
    }

    /// Inner blocking factor for the panel kernels.
    pub fn inner_block(mut self, ib: usize) -> Self {
        self.inner_block = Some(ib);
        self
    }

    /// Scheduling class (default [`PriorityClass::Standard`]).
    pub fn priority(mut self, class: PriorityClass) -> Self {
        self.priority = class;
        self
    }

    /// Completion deadline, measured from submission. A job whose
    /// deadline expires while it is still *queued* (no task dispatched
    /// yet) is shed with [`ServiceError::DeadlineExceeded`] before it
    /// consumes worker time — including at admission, when the deadline
    /// burned away while `submit` blocked on a saturated gate. Once the
    /// first task dispatches the job runs to completion; a deadline is a
    /// shedding bound, not a preemption request (use
    /// [`JobHandle::cancel`] for that).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attach a fault injector consulted before every task attempt of
    /// *this job only* (testing hook; disables batching for the job so
    /// every attempt routes through the retryable task path).
    pub fn faults(mut self, injector: Arc<dyn FaultInjector + Send + Sync>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Override the service's default [`CostModel`] for this job's
    /// priorities and fair-share accounting.
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Tag the job's place in the online-autotuning pipeline (counted in
    /// [`ServiceStats::probe_jobs`] / [`ServiceStats::tuned_jobs`]).
    pub fn tuning(mut self, tuning: JobTuning) -> Self {
        self.tuning = tuning;
        self
    }
}

/// A job's role in the service-level online autotuner — purely an
/// accounting tag; the tuner sets it so `ServiceStats` can show how many
/// jobs paid calibration cost versus ran on measured plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JobTuning {
    /// Not part of a tuning pipeline.
    #[default]
    Standard,
    /// A calibration probe: its measurements feed a profile fit.
    Probe,
    /// Planned from a calibrated profile (tile size, tree, and cost model
    /// chosen by the selector).
    Tuned,
}

/// A completed factorization: the tile/reflector state plus the DAG that
/// produced it and the original (unpadded) dimensions.
pub struct FactoredJob<T: Scalar> {
    /// Tiles and T factors after the DAG ran to completion.
    pub state: FactorState<T>,
    /// The task graph that was executed.
    pub graph: TaskGraph,
    /// Original row count of the input.
    pub rows: usize,
    /// Original column count of the input.
    pub cols: usize,
}

impl<T: Scalar> FactoredJob<T> {
    /// The upper-triangular factor `R` (`rows x cols`, unpadded).
    pub fn r_matrix(&self) -> Matrix<T> {
        self.state.r_matrix()
    }
}

/// The product of a completed job.
pub enum JobOutput<T: Scalar> {
    /// A plain factorization.
    Factored(FactoredJob<T>),
    /// Least-squares solution plus the factorization that produced it.
    Solved {
        /// `x = R⁻¹ (Qᵀ rhs)₁..ₙ`.
        x: Vec<T>,
        /// The underlying factorization.
        factor: FactoredJob<T>,
    },
    /// `Q c` / `Qᵀ c` plus the factorization that produced it.
    Applied {
        /// The transformed matrix (unpadded, `rows x c.cols()`).
        c: Matrix<T>,
        /// The underlying factorization.
        factor: FactoredJob<T>,
    },
}

impl<T: Scalar> JobOutput<T> {
    /// The factorization underlying any job kind.
    pub fn factor(&self) -> &FactoredJob<T> {
        match self {
            JobOutput::Factored(f) => f,
            JobOutput::Solved { factor, .. } => factor,
            JobOutput::Applied { factor, .. } => factor,
        }
    }

    /// Consume the output, keeping only the factorization.
    pub fn into_factor(self) -> FactoredJob<T> {
        match self {
            JobOutput::Factored(f) => f,
            JobOutput::Solved { factor, .. } => factor,
            JobOutput::Applied { factor, .. } => factor,
        }
    }
}

/// Everything a job gets back on its completion channel.
pub struct JobResult<T: Scalar> {
    /// The job's service-assigned id.
    pub job: JobId,
    /// The class the job ran under.
    pub class: PriorityClass,
    /// The computed product.
    pub output: JobOutput<T>,
    /// Execution report (task spread, recovery counters, …). For batched
    /// jobs the report covers the composite unit's share attributed to
    /// this job.
    pub report: RunReport,
    /// Submission → first dispatch of any of the job's tasks.
    pub queue_wait: Duration,
    /// Submission → result delivery.
    pub latency: Duration,
    /// Service-wide task dispatches that happened between this job's
    /// submission and its own first dispatch — a scheduler-level fairness
    /// measure independent of task durations.
    pub dispatch_delay_tasks: u64,
    /// Jobs with pending work at the moment this job was admitted
    /// (the backlog it had to share the pool with).
    pub backlog_at_submit: u64,
    /// Whether the job executed inside a composite small-job batch.
    pub batched: bool,
    /// Per-task kernel compute latencies of this job alone.
    pub task_latency: LatencyHistogram,
    /// Total measured kernel time per timing-class slot
    /// (`[triangulation, elimination, update]`, µs) — the raw material
    /// the online autotuner fits profiles from. All zeros for batched
    /// jobs, which bypass per-task accounting.
    pub class_compute_us: [f64; 3],
    /// Committed tasks per timing-class slot (pairs with
    /// [`JobResult::class_compute_us`] to give per-class means).
    pub class_tasks: [u64; 3],
}

/// Why a submission or job failed.
#[derive(Debug)]
pub enum ServiceError {
    /// Admission bound reached ([`QrService::try_submit`] only). Carries
    /// the gate occupancy at rejection time so backpressure is
    /// debuggable straight from logs.
    Saturated {
        /// Submitted-but-unfinished jobs when the submission was turned
        /// away.
        in_flight: usize,
        /// The configured admission bound
        /// ([`ServiceConfig::max_in_flight`]).
        max_in_flight: usize,
    },
    /// The service is draining or already shut down.
    ShuttingDown,
    /// Spec validation or numeric epilogue failure.
    Numeric(MatrixError),
    /// The job's DAG execution failed (retry budget exhausted, …).
    Runtime(RuntimeError),
    /// The job's [`deadline`](JobSpec::deadline) expired while it was
    /// still queued, so it was shed before consuming worker time.
    DeadlineExceeded {
        /// The deadline the job was submitted with.
        deadline: Duration,
        /// How far past the deadline the job was when it was shed.
        late_by: Duration,
    },
    /// The job was cancelled via [`JobHandle::cancel`] and its in-flight
    /// work drained at the commit fence.
    Cancelled,
    /// A non-finite value (NaN/Inf) was detected — at submission, or in
    /// a panel-factor output at the commit fence — and contained before
    /// it could propagate into downstream tiles.
    NumericalBreakdown {
        /// The panel-factor task whose output was poisoned; `None` when
        /// the *input* matrix already carried a non-finite value at
        /// submission.
        task: Option<TaskId>,
        /// Grid coordinates `(tile row, tile column)` of the first
        /// poisoned tile.
        tile: (usize, usize),
    },
    /// The service dropped the completion channel without a result
    /// (manager died — should not happen).
    Lost,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Saturated {
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "service saturated: admission bound reached ({in_flight}/{max_in_flight} jobs in flight)"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Numeric(e) => write!(f, "job failed numerically: {e}"),
            ServiceError::Runtime(e) => write!(f, "job execution failed: {e}"),
            ServiceError::DeadlineExceeded { deadline, late_by } => write!(
                f,
                "job shed: deadline {deadline:?} already missed by {late_by:?} while queued"
            ),
            ServiceError::Cancelled => write!(f, "job cancelled before completion"),
            ServiceError::NumericalBreakdown { task, tile } => match task {
                Some(t) => write!(
                    f,
                    "numerical breakdown: task {t} produced a non-finite panel factor at tile ({}, {})",
                    tile.0, tile.1
                ),
                None => write!(
                    f,
                    "numerical breakdown: input matrix is non-finite at tile ({}, {})",
                    tile.0, tile.1
                ),
            },
            ServiceError::Lost => write!(f, "service lost the job (manager terminated)"),
        }
    }
}

impl std::error::Error for ServiceError {
    /// Wrapped numeric / runtime failures chain to their cause so
    /// `Error::source` walkers reach the root diagnostic.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Numeric(e) => Some(e),
            ServiceError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ServiceError> for MatrixError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Numeric(inner) => inner,
            ServiceError::Runtime(inner) => inner.into(),
            other => MatrixError::Runtime {
                reason: other.to_string(),
            },
        }
    }
}

/// The job had not completed when [`JobHandle::wait_timeout`]'s bound
/// expired. The handle is untouched — wait again or cancel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeout;

impl fmt::Display for WaitTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job still running when the wait timeout expired")
    }
}

impl std::error::Error for WaitTimeout {}

/// Handle to one submitted job; redeem it with [`JobHandle::wait`].
pub struct JobHandle<T: Scalar> {
    id: JobId,
    rx: mpsc::Receiver<Result<JobResult<T>, ServiceError>>,
    ctl: mpsc::Sender<Msg<T>>,
}

impl<T: Scalar> JobHandle<T> {
    /// The service-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Block until the job completes (or fails) and return its result.
    pub fn wait(self) -> Result<JobResult<T>, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Lost))
    }

    /// Wait at most `timeout` for the result. On timeout the handle is
    /// *not* consumed: the job keeps running and the handle stays
    /// redeemable (wait again, or [`cancel`](Self::cancel) and then wait
    /// for the [`ServiceError::Cancelled`] acknowledgement).
    pub fn wait_timeout(
        &self,
        timeout: Duration,
    ) -> Result<Result<JobResult<T>, ServiceError>, WaitTimeout> {
        match self.rx.recv_timeout(timeout) {
            Ok(r) => Ok(r),
            Err(RecvTimeoutError::Timeout) => Err(WaitTimeout),
            Err(RecvTimeoutError::Disconnected) => Ok(Err(ServiceError::Lost)),
        }
    }

    /// Request cooperative cancellation. The manager stops dispatching
    /// the job's remaining tasks, lets in-flight attempts drain at the
    /// fenced-commit boundary (no preemption — concurrent jobs stay
    /// bit-identical), releases the admission slot and fair-share state,
    /// and resolves the handle with [`ServiceError::Cancelled`].
    ///
    /// Cancellation races completion: if the job finishes first the
    /// handle resolves with the normal result and the cancel is a no-op.
    /// Safe to call more than once.
    pub fn cancel(&self) {
        // A send error means the manager already shut down; the handle
        // will resolve through the drain path regardless.
        let _ = self.ctl.send(Msg::Cancel(self.id));
    }
}

/// Service-wide counters and histograms, readable via [`QrService::stats`].
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Jobs accepted by the manager.
    pub jobs_submitted: u64,
    /// Jobs that delivered a successful result.
    pub jobs_completed: u64,
    /// Jobs that delivered an error.
    pub jobs_failed: u64,
    /// Jobs that executed inside composite batches.
    pub jobs_batched: u64,
    /// Composite batch units dispatched.
    pub batches: u64,
    /// Individual task dispatches (batched jobs count once per job).
    pub tasks_dispatched: u64,
    /// High-water mark of the total ready backlog (ready tasks across
    /// all jobs plus undispatched small jobs).
    pub max_ready_depth: usize,
    /// High-water mark of concurrently admitted jobs.
    pub max_jobs_in_flight: usize,
    /// Submission → first dispatch, across all completed jobs.
    pub queue_wait: LatencyHistogram,
    /// Submission → result delivery, across all completed jobs.
    pub latency: LatencyHistogram,
    /// Per-class latency histograms, indexed interactive/standard/bulk.
    pub class_latency: [LatencyHistogram; 3],
    /// Lifecycle-event counters: jobs shed past their deadline, jobs
    /// cancelled, poisoned panel factors contained, and stalled workers
    /// retired by the watchdog.
    pub lifecycle: LifecycleCounters,
    /// Times a job's drift detector fired and its remaining DAG was
    /// re-ranked under freshly scaled calibrated costs.
    pub drift_reweights: u64,
    /// Jobs submitted tagged [`JobTuning::Probe`] (paid calibration).
    pub probe_jobs: u64,
    /// Jobs submitted tagged [`JobTuning::Tuned`] (ran on measured plans).
    pub tuned_jobs: u64,
}

impl ServiceStats {
    /// Latency histogram of one priority class.
    pub fn latency_for(&self, class: PriorityClass) -> &LatencyHistogram {
        &self.class_latency[class.index()]
    }
}

// ---------------------------------------------------------------------------
// admission gate
// ---------------------------------------------------------------------------

struct GateState {
    in_flight: usize,
    accepting: bool,
}

struct Gate {
    capacity: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn new(capacity: usize) -> Self {
        Gate {
            capacity,
            state: Mutex::new(GateState {
                in_flight: 0,
                accepting: true,
            }),
            cv: Condvar::new(),
        }
    }

    fn acquire(&self, block: bool) -> Result<(), ServiceError> {
        let mut s = self.state.lock().unwrap();
        loop {
            if !s.accepting {
                return Err(ServiceError::ShuttingDown);
            }
            if self.capacity == 0 || s.in_flight < self.capacity {
                s.in_flight += 1;
                return Ok(());
            }
            if !block {
                return Err(ServiceError::Saturated {
                    in_flight: s.in_flight,
                    max_in_flight: self.capacity,
                });
            }
            s = self.cv.wait(s).unwrap();
        }
    }

    fn release(&self) {
        let mut s = self.state.lock().unwrap();
        s.in_flight = s.in_flight.saturating_sub(1);
        drop(s);
        self.cv.notify_all();
    }

    fn close(&self) {
        self.state.lock().unwrap().accepting = false;
        self.cv.notify_all();
    }

    fn in_flight(&self) -> usize {
        self.state.lock().unwrap().in_flight
    }
}

// ---------------------------------------------------------------------------
// wire types between submitter, manager, and workers
// ---------------------------------------------------------------------------

type ResultTx<T> = mpsc::Sender<Result<JobResult<T>, ServiceError>>;
type SharedInjector = Arc<dyn FaultInjector + Send + Sync>;

/// Identity + timing + completion channel of one job, carried through
/// whichever path (interleaved / batched / epilogue) executes it.
struct JobMeta<T: Scalar> {
    id: JobId,
    class: PriorityClass,
    submitted: Instant,
    /// Absolute shed bound (`submitted + JobSpec::deadline`).
    deadline: Option<Instant>,
    submit_dispatch_count: u64,
    backlog_at_submit: u64,
    queue_wait: Duration,
    dispatch_delay_tasks: u64,
    result_tx: ResultTx<T>,
}

struct NewJob<T: Scalar> {
    id: JobId,
    state: FactorState<T>,
    graph: Arc<TaskGraph>,
    rows: usize,
    cols: usize,
    b: usize,
    payload: Payload<T>,
    class: PriorityClass,
    cost: CostModel,
    tuning: JobTuning,
    injector: Option<SharedInjector>,
    submitted: Instant,
    deadline: Option<Duration>,
    result_tx: ResultTx<T>,
}

enum UnitFailure {
    Numeric(MatrixError),
    Panicked(String),
}

enum TaskOutcome<T: Scalar> {
    Done {
        completed: Box<CompletedTask<T>>,
        stage_wait: Duration,
        compute_ns: u64,
    },
    Failed(MatrixError),
    Panicked(String),
}

struct TaskDone<T: Scalar> {
    job: JobId,
    task: TaskId,
    worker: usize,
    outcome: TaskOutcome<T>,
}

struct BatchItem<T: Scalar> {
    meta: JobMeta<T>,
    result: Result<(JobOutput<T>, LatencyHistogram), UnitFailure>,
    elapsed: Duration,
    tasks: u64,
}

struct BatchDone<T: Scalar> {
    worker: usize,
    items: Vec<BatchItem<T>>,
}

struct EpilogueDone<T: Scalar> {
    job: JobId,
    worker: usize,
    result: Result<JobOutput<T>, UnitFailure>,
}

enum Msg<T: Scalar> {
    Submit(Box<NewJob<T>>),
    TaskDone(Box<TaskDone<T>>),
    BatchDone(BatchDone<T>),
    EpilogueDone(Box<EpilogueDone<T>>),
    Cancel(JobId),
    Drain(mpsc::Sender<()>),
}

struct BatchUnit<T: Scalar> {
    meta: JobMeta<T>,
    state: FactorState<T>,
    graph: Arc<TaskGraph>,
    rows: usize,
    cols: usize,
    payload: Payload<T>,
}

struct EpilogueUnit<T: Scalar> {
    job: JobId,
    state: FactorState<T>,
    graph: Arc<TaskGraph>,
    rows: usize,
    cols: usize,
    payload: Payload<T>,
}

enum Work<T: Scalar> {
    Task {
        job: JobId,
        task: TaskId,
        kind: TaskKind,
        attempt: u32,
        shared: Arc<SharedFactorState<T>>,
        injector: Option<SharedInjector>,
    },
    Batch(Vec<BatchUnit<T>>),
    Epilogue(Box<EpilogueUnit<T>>),
}

/// Run the epilogue of a finished DAG: wrap the state into the job's
/// requested output, replaying the reflectors for solve/apply payloads.
///
/// The solve path mirrors `TiledQr::solve` exactly (pad, `Qᵀ b`, back
/// substitution on the leading `cols` entries) so a service solve is
/// bit-identical to the single-matrix API.
fn finish_output<T: Scalar>(
    state: FactorState<T>,
    graph: &TaskGraph,
    rows: usize,
    cols: usize,
    payload: Payload<T>,
) -> Result<JobOutput<T>, MatrixError> {
    let wrap = |state: FactorState<T>| FactoredJob {
        state,
        graph: graph.clone(),
        rows,
        cols,
    };
    match payload {
        Payload::Factor => Ok(JobOutput::Factored(wrap(state))),
        Payload::Solve { rhs } => {
            let (pm, _) = state.tiles().padded_dims();
            let bm = Matrix::from_col_major(rows, 1, rhs)?;
            let mut work = Matrix::zeros(pm, 1);
            work.set_submatrix(0, 0, &bm)?;
            apply_qt_dense(&state, graph, &mut work)?;
            let r_sq = state.r_matrix().submatrix(0, 0, cols, cols)?;
            let x = tileqr_matrix::ops::solve_upper_triangular(&r_sq, &work.as_slice()[..cols])?;
            Ok(JobOutput::Solved {
                x,
                factor: wrap(state),
            })
        }
        Payload::Apply { c, transpose } => {
            let (pm, _) = state.tiles().padded_dims();
            let mut work = Matrix::zeros(pm, c.cols());
            work.set_submatrix(0, 0, &c)?;
            if transpose {
                apply_qt_dense(&state, graph, &mut work)?;
            } else {
                apply_q_dense(&state, graph, &mut work)?;
            }
            let out = work.submatrix(0, 0, rows, c.cols())?;
            Ok(JobOutput::Applied {
                c: out,
                factor: wrap(state),
            })
        }
    }
}

// ---------------------------------------------------------------------------
// worker thread
// ---------------------------------------------------------------------------

fn worker_loop<T: Scalar>(
    worker_id: usize,
    rx: mpsc::Receiver<Work<T>>,
    tx: mpsc::Sender<Msg<T>>,
    per_worker_ws: bool,
) {
    // One arena per resident thread, grown on demand to the largest
    // (b, ib) the worker has seen — steady state allocates nothing.
    let mut ws = Workspace::<T>::minimal();
    while let Ok(work) = rx.recv() {
        match work {
            Work::Task {
                job,
                task,
                kind,
                attempt,
                shared,
                injector,
            } => {
                let ws_ref = &mut ws;
                let result = catch_unwind(AssertUnwindSafe(
                    || -> Result<(Box<CompletedTask<T>>, Duration, u64), MatrixError> {
                        let fault = injector
                            .as_deref()
                            .map_or(InjectedFault::None, |f| f.before_attempt(task, attempt));
                        match fault {
                            InjectedFault::None | InjectedFault::PoisonNan => {}
                            InjectedFault::Panic => {
                                panic!("injected panic: task {task} attempt {attempt}")
                            }
                            InjectedFault::TransientError => {
                                return Err(MatrixError::Runtime {
                                    reason: format!(
                                        "injected transient failure: task {task} attempt {attempt}"
                                    ),
                                })
                            }
                            InjectedFault::Stall(d) => std::thread::sleep(d),
                        }
                        let t0 = Instant::now();
                        let staged = shared.stage_preserving(kind)?;
                        let t1 = Instant::now();
                        let mut done = if per_worker_ws {
                            staged.compute_with(ws_ref)?
                        } else {
                            staged.compute()?
                        };
                        if fault == InjectedFault::PoisonNan {
                            // NaN-corrupt the output *after* the kernel ran,
                            // exercising the manager's commit-fence scan.
                            done.poison();
                        }
                        Ok((
                            Box::new(done),
                            t1.duration_since(t0),
                            t1.elapsed().as_nanos() as u64,
                        ))
                    },
                ));
                // Drop the state handle *before* reporting: when the
                // manager sees the job's last completion it can then
                // reclaim unique ownership immediately.
                drop(shared);
                let (outcome, retire) = match result {
                    Ok(Ok((completed, stage_wait, compute_ns))) => (
                        TaskOutcome::Done {
                            completed,
                            stage_wait,
                            compute_ns,
                        },
                        false,
                    ),
                    Ok(Err(e)) => (TaskOutcome::Failed(e), false),
                    Err(payload) => (TaskOutcome::Panicked(panic_message(payload.as_ref())), true),
                };
                let gone = tx
                    .send(Msg::TaskDone(Box::new(TaskDone {
                        job,
                        task,
                        worker: worker_id,
                        outcome,
                    })))
                    .is_err();
                if gone || retire {
                    break;
                }
            }
            Work::Batch(units) => {
                let mut items = Vec::with_capacity(units.len());
                for unit in units {
                    let BatchUnit {
                        meta,
                        mut state,
                        graph,
                        rows,
                        cols,
                        payload,
                    } = unit;
                    let tasks = graph.len() as u64;
                    let t0 = Instant::now();
                    let graph_ref = &graph;
                    let run = catch_unwind(AssertUnwindSafe(
                        move || -> Result<(JobOutput<T>, LatencyHistogram), MatrixError> {
                            let mut hist = LatencyHistogram::new();
                            for tid in 0..graph_ref.len() {
                                let k0 = Instant::now();
                                state.execute(graph_ref.task(tid))?;
                                hist.record_ns(k0.elapsed().as_nanos() as u64);
                            }
                            let out = finish_output(state, graph_ref, rows, cols, payload)?;
                            Ok((out, hist))
                        },
                    ));
                    let result = match run {
                        Ok(Ok(v)) => Ok(v),
                        Ok(Err(e)) => Err(UnitFailure::Numeric(e)),
                        Err(payload) => Err(UnitFailure::Panicked(panic_message(payload.as_ref()))),
                    };
                    items.push(BatchItem {
                        meta,
                        result,
                        elapsed: t0.elapsed(),
                        tasks,
                    });
                }
                if tx
                    .send(Msg::BatchDone(BatchDone {
                        worker: worker_id,
                        items,
                    }))
                    .is_err()
                {
                    break;
                }
            }
            Work::Epilogue(unit) => {
                let EpilogueUnit {
                    job,
                    state,
                    graph,
                    rows,
                    cols,
                    payload,
                } = *unit;
                let graph_ref = &graph;
                let run = catch_unwind(AssertUnwindSafe(move || {
                    finish_output(state, graph_ref, rows, cols, payload)
                }));
                let result = match run {
                    Ok(Ok(v)) => Ok(v),
                    Ok(Err(e)) => Err(UnitFailure::Numeric(e)),
                    Err(payload) => Err(UnitFailure::Panicked(panic_message(payload.as_ref()))),
                };
                if tx
                    .send(Msg::EpilogueDone(Box::new(EpilogueDone {
                        job,
                        worker: worker_id,
                        result,
                    })))
                    .is_err()
                {
                    break;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// manager
// ---------------------------------------------------------------------------

enum InFlight {
    Task {
        job: JobId,
        task: TaskId,
        /// Dispatch time, read by the stall watchdog.
        since: Instant,
    },
    /// Batch or epilogue unit — outside watchdog jurisdiction (composite
    /// units have no per-task retry identity to requeue).
    Other,
}

struct JobState<T: Scalar> {
    meta: JobMeta<T>,
    shared: Option<Arc<SharedFactorState<T>>>,
    graph: Arc<TaskGraph>,
    rows: usize,
    cols: usize,
    b: usize,
    payload: Option<Payload<T>>,
    weight: f64,
    cost: CostModel,
    /// Armed iff drift detection is on and the job has calibrated costs:
    /// the detector plus the *original* calibration its ratios scale.
    drift: Option<(DriftDetector, ClassCosts)>,
    drift_panel: usize,
    drift_reweights: u64,
    class_compute_us: [f64; 3],
    class_tasks: [u64; 3],
    vtime: f64,
    tracker: ReadyTracker,
    ready: ReadyQueue,
    committed: Vec<bool>,
    attempts: Vec<u32>,
    in_flight: usize,
    /// Set by [`Msg::Cancel`]: stop dispatching, drain in-flight work,
    /// then resolve with [`ServiceError::Cancelled`].
    cancelled: bool,
    injector: Option<SharedInjector>,
    started: Option<Instant>,
    tasks_per_worker: Vec<u64>,
    stage_wait: Duration,
    commit_wait: Duration,
    retries: u64,
    requeues: u64,
    worker_deaths: u64,
    task_latency: LatencyHistogram,
    report: Option<RunReport>,
}

impl<T: Scalar> JobState<T> {
    fn pending_work(&self) -> bool {
        !self.tracker.all_done()
    }
}

struct SmallJob<T: Scalar> {
    meta: JobMeta<T>,
    state: FactorState<T>,
    graph: Arc<TaskGraph>,
    rows: usize,
    cols: usize,
    payload: Payload<T>,
    vtime: f64,
}

struct PendingBatch<T: Scalar> {
    units: Vec<SmallJob<T>>,
    vtime: f64,
}

struct WorkerSlot<T: Scalar> {
    tx: mpsc::Sender<Work<T>>,
    handle: Option<JoinHandle<()>>,
}

struct Manager<T: Scalar> {
    cfg: ServiceConfig,
    workers: usize,
    rx: mpsc::Receiver<Msg<T>>,
    msg_tx: mpsc::Sender<Msg<T>>,
    slots: Vec<WorkerSlot<T>>,
    graveyard: Vec<JoinHandle<()>>,
    idle: Vec<usize>,
    in_flight_of: Vec<Option<InFlight>>,
    jobs: HashMap<JobId, JobState<T>>,
    smalls: VecDeque<SmallJob<T>>,
    batches: VecDeque<PendingBatch<T>>,
    batch_in_flight: usize,
    epi_queue: VecDeque<Work<T>>,
    finalize_pending: Vec<JobId>,
    parked: BinaryHeap<Reverse<(Instant, JobId, TaskId)>>,
    vclock: f64,
    dispatch_count: u64,
    draining: bool,
    drain_ack: Option<mpsc::Sender<()>>,
    gate: Arc<Gate>,
    metrics: Arc<Mutex<ServiceStats>>,
}

/// Cost of one task under the job's model, scaled to keep virtual times
/// in a sane range (megaflops for the flop model, microseconds for a
/// calibrated one — WFQ only compares within the service, so any
/// monotone unit works).
fn task_cost(cost: CostModel, b: usize, kind: TaskKind) -> f64 {
    (model_weight(cost, b)(kind) / 1.0e6).max(1.0e-9)
}

/// Panel-factor kinds are the poison chokepoint: every downstream update
/// consumes their tiles or T factors, so scanning them at the commit
/// fence catches a NaN/Inf before it spreads beyond one tile column.
fn is_panel_factor(kind: TaskKind) -> bool {
    matches!(
        kind,
        TaskKind::Geqrt { .. } | TaskKind::Tsqrt { .. } | TaskKind::Ttqrt { .. }
    )
}

impl<T: Scalar> Manager<T> {
    fn new(
        cfg: ServiceConfig,
        workers: usize,
        rx: mpsc::Receiver<Msg<T>>,
        msg_tx: mpsc::Sender<Msg<T>>,
        gate: Arc<Gate>,
        metrics: Arc<Mutex<ServiceStats>>,
    ) -> Self {
        let mut mgr = Manager {
            cfg,
            workers,
            rx,
            msg_tx,
            slots: Vec::with_capacity(workers),
            graveyard: Vec::new(),
            idle: (0..workers).rev().collect(),
            in_flight_of: (0..workers).map(|_| None).collect(),
            jobs: HashMap::new(),
            smalls: VecDeque::new(),
            batches: VecDeque::new(),
            batch_in_flight: 0,
            epi_queue: VecDeque::new(),
            finalize_pending: Vec::new(),
            parked: BinaryHeap::new(),
            vclock: 0.0,
            dispatch_count: 0,
            draining: false,
            drain_ack: None,
            gate,
            metrics,
        };
        for w in 0..workers {
            let slot = mgr.spawn_worker(w);
            mgr.slots.push(slot);
        }
        mgr
    }

    fn spawn_worker(&self, id: usize) -> WorkerSlot<T> {
        let (tx, rx) = mpsc::channel::<Work<T>>();
        let msg_tx = self.msg_tx.clone();
        let per_worker = self.cfg.workspace == WorkspacePolicy::PerWorker;
        let handle = std::thread::Builder::new()
            .name(format!("qr-service-worker-{id}"))
            .spawn(move || worker_loop(id, rx, msg_tx, per_worker))
            .expect("spawn service worker");
        WorkerSlot {
            tx,
            handle: Some(handle),
        }
    }

    /// Replace a retired worker thread so the pool never shrinks.
    fn respawn(&mut self, w: usize) {
        let mut slot = self.spawn_worker(w);
        std::mem::swap(&mut self.slots[w], &mut slot);
        if let Some(h) = slot.handle.take() {
            self.graveyard.push(h);
        }
        self.in_flight_of[w] = None;
        if !self.idle.contains(&w) {
            self.idle.push(w);
        }
    }

    /// Virtual time a newly admitted job starts at: the minimum over the
    /// current backlog, so no new arrival is ordered behind work that
    /// came after it and no idle period inflates anyone's credit.
    fn arrival_vtime(&self) -> f64 {
        let mut v = f64::INFINITY;
        for j in self.jobs.values() {
            if j.pending_work() {
                v = v.min(j.vtime);
            }
        }
        for s in &self.smalls {
            v = v.min(s.vtime);
        }
        for b in &self.batches {
            v = v.min(b.vtime);
        }
        if v.is_finite() {
            v
        } else {
            self.vclock
        }
    }

    fn backlog_size(&self) -> u64 {
        let active = self.jobs.values().filter(|j| j.pending_work()).count();
        (active + self.smalls.len() + self.batches.iter().map(|b| b.units.len()).sum::<usize>())
            as u64
    }

    fn handle_submit(&mut self, nj: NewJob<T>) {
        let NewJob {
            id,
            state,
            graph,
            rows,
            cols,
            b,
            payload,
            class,
            cost,
            tuning,
            injector,
            submitted,
            deadline,
            result_tx,
        } = nj;
        let backlog = self.backlog_size();
        let meta = JobMeta {
            id,
            class,
            submitted,
            deadline: deadline.map(|d| submitted + d),
            submit_dispatch_count: self.dispatch_count,
            backlog_at_submit: backlog,
            queue_wait: Duration::ZERO,
            dispatch_delay_tasks: 0,
            result_tx,
        };
        let vtime = self.arrival_vtime();
        {
            let mut m = self.metrics.lock().unwrap();
            m.jobs_submitted += 1;
            m.max_jobs_in_flight = m.max_jobs_in_flight.max(self.gate.in_flight());
            match tuning {
                JobTuning::Standard => {}
                JobTuning::Probe => m.probe_jobs += 1,
                JobTuning::Tuned => m.tuned_jobs += 1,
            }
        }
        // Admission-time shed: the deadline may already be unmeetable —
        // typically because `submit` blocked on a saturated gate while it
        // burned away. Reject before the job costs any scheduling state.
        if Self::meta_expired(&meta, Instant::now()) {
            self.shed_meta(meta);
            return;
        }
        let batchable = self.cfg.batching_enabled()
            && graph.len() <= self.cfg.batch_max_tasks
            && injector.is_none();
        if batchable {
            self.smalls.push_back(SmallJob {
                meta,
                state,
                graph,
                rows,
                cols,
                payload,
                vtime,
            });
            if self.smalls.len() >= self.cfg.batch_max_jobs {
                self.flush_smalls();
            }
            return;
        }
        let total = graph.len();
        let tracker = ReadyTracker::new(&graph);
        let mut ready = ReadyQueue::for_policy(self.cfg.policy, &graph, model_weight(cost, b));
        for t in tracker.initial_ready(&graph) {
            ready.push(t);
        }
        let drift = self
            .cfg
            .drift
            .enabled
            .then(|| cost.class_costs())
            .flatten()
            .map(|base| {
                (
                    DriftDetector::new(self.cfg.drift, base.expected_us(b)),
                    base,
                )
            });
        let job = JobState {
            meta,
            shared: Some(Arc::new(SharedFactorState::new(state))),
            graph,
            rows,
            cols,
            b,
            payload: Some(payload),
            weight: class.weight(),
            cost,
            drift,
            drift_panel: 0,
            drift_reweights: 0,
            class_compute_us: [0.0; 3],
            class_tasks: [0; 3],
            vtime,
            tracker,
            ready,
            committed: vec![false; total],
            attempts: vec![0u32; total],
            in_flight: 0,
            cancelled: false,
            injector,
            started: None,
            tasks_per_worker: vec![0u64; self.workers],
            stage_wait: Duration::ZERO,
            commit_wait: Duration::ZERO,
            retries: 0,
            requeues: 0,
            worker_deaths: 0,
            task_latency: LatencyHistogram::new(),
            report: None,
        };
        self.jobs.insert(id, job);
    }

    fn flush_smalls(&mut self) {
        if self.smalls.is_empty() {
            return;
        }
        let units: Vec<SmallJob<T>> = self.smalls.drain(..).collect();
        let vtime = units.iter().map(|u| u.vtime).fold(f64::INFINITY, f64::min);
        self.batches.push_back(PendingBatch { units, vtime });
    }

    /// Move due parked retries back into their job's ready set.
    fn wake_parked(&mut self) {
        let now = Instant::now();
        while let Some(Reverse((deadline, job, task))) = self.parked.peek().copied() {
            if deadline > now {
                break;
            }
            self.parked.pop();
            if let Some(j) = self.jobs.get_mut(&job) {
                if !j.committed[task] {
                    j.ready.push(task);
                }
            }
        }
    }

    /// Whether a queued job's deadline has expired.
    fn meta_expired(meta: &JobMeta<T>, now: Instant) -> bool {
        meta.deadline.is_some_and(|d| now >= d)
    }

    /// Shed one queued job past its deadline: resolve the handle with
    /// [`ServiceError::DeadlineExceeded`] and release the admission slot.
    fn shed_meta(&mut self, meta: JobMeta<T>) {
        let now = Instant::now();
        let deadline = meta.deadline.expect("only deadline-bearing jobs shed");
        let err = ServiceError::DeadlineExceeded {
            deadline: deadline.duration_since(meta.submitted),
            late_by: now.saturating_duration_since(deadline),
        };
        // Release before resolving the handle so a waiter that sees the
        // error can immediately reuse the admission slot.
        self.gate.release();
        let _ = meta.result_tx.send(Err(err));
        let mut m = self.metrics.lock().unwrap();
        m.jobs_failed += 1;
        m.lifecycle.jobs_shed += 1;
    }

    /// Resolve one queued (never-dispatched) job as cancelled.
    fn cancel_meta(&mut self, meta: JobMeta<T>) {
        self.gate.release();
        let _ = meta.result_tx.send(Err(ServiceError::Cancelled));
        let mut m = self.metrics.lock().unwrap();
        m.jobs_failed += 1;
        m.lifecycle.jobs_cancelled += 1;
    }

    /// Earliest deadline among still-queued jobs (bounds the run loop's
    /// recv timeout so sheds fire without needing message traffic).
    fn earliest_queued_deadline(&self) -> Option<Instant> {
        let dag = self
            .jobs
            .values()
            .filter(|j| j.started.is_none() && !j.cancelled)
            .filter_map(|j| j.meta.deadline);
        let small = self.smalls.iter().filter_map(|s| s.meta.deadline);
        let batched = self
            .batches
            .iter()
            .flat_map(|b| b.units.iter())
            .filter_map(|u| u.meta.deadline);
        dag.chain(small).chain(batched).min()
    }

    /// Shed every queued job whose deadline has passed. A job counts as
    /// queued until its first task (or batch) dispatches; after that it
    /// runs to completion — a deadline bounds *waiting*, not execution.
    fn sweep_shed(&mut self) {
        let now = Instant::now();
        let expired: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| {
                j.started.is_none() && !j.cancelled && Self::meta_expired(&j.meta, now)
            })
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            if let Some(job) = self.jobs.remove(&id) {
                self.shed_meta(job.meta);
            }
        }
        // Shedding needs the meta by value (to resolve its channel), so
        // rebuild the small/batch queues rather than `retain` in place.
        let expired_queued = self
            .smalls
            .iter()
            .map(|s| &s.meta)
            .chain(
                self.batches
                    .iter()
                    .flat_map(|b| b.units.iter().map(|u| &u.meta)),
            )
            .any(|m| Self::meta_expired(m, now));
        if expired_queued {
            let smalls = std::mem::take(&mut self.smalls);
            for s in smalls {
                if Self::meta_expired(&s.meta, now) {
                    self.shed_meta(s.meta);
                } else {
                    self.smalls.push_back(s);
                }
            }
            let batches = std::mem::take(&mut self.batches);
            for mut b in batches {
                let units = std::mem::take(&mut b.units);
                for u in units {
                    if Self::meta_expired(&u.meta, now) {
                        self.shed_meta(u.meta);
                    } else {
                        b.units.push(u);
                    }
                }
                if !b.units.is_empty() {
                    self.batches.push_back(b);
                }
            }
        }
    }

    /// Earliest instant at which a live worker's in-flight task crosses
    /// the stall bound (None when the watchdog is disabled or idle).
    fn earliest_stall_expiry(&self) -> Option<Instant> {
        let bound = self.cfg.fault_tolerance.stall_timeout?;
        self.in_flight_of
            .iter()
            .filter_map(|f| match f {
                Some(InFlight::Task { since, .. }) => Some(*since + bound),
                _ => None,
            })
            .min()
    }

    /// Stall watchdog: retire any worker whose in-flight task has aged
    /// past `stall_timeout`, respawn the slot (the pool never shrinks),
    /// and requeue the task exactly once through the normal retry path.
    /// The stalled thread's eventual late result (if it ever wakes) is
    /// deduplicated at the commit fence like any other stale attempt.
    fn sweep_watchdog(&mut self) {
        let Some(bound) = self.cfg.fault_tolerance.stall_timeout else {
            return;
        };
        let now = Instant::now();
        let stalled: Vec<(usize, JobId, TaskId)> = self
            .in_flight_of
            .iter()
            .enumerate()
            .filter_map(|(w, f)| match f {
                Some(InFlight::Task { job, task, since })
                    if now.saturating_duration_since(*since) >= bound =>
                {
                    Some((w, *job, *task))
                }
                _ => None,
            })
            .collect();
        for (w, id, task) in stalled {
            self.respawn(w);
            self.metrics.lock().unwrap().lifecycle.watchdog_retirements += 1;
            let mut requeue = false;
            let mut drained_cancel = false;
            if let Some(job) = self.jobs.get_mut(&id) {
                job.in_flight = job.in_flight.saturating_sub(1);
                job.worker_deaths += 1;
                if job.cancelled {
                    drained_cancel = job.in_flight == 0 && !job.tracker.all_done();
                } else if !job.committed[task] {
                    job.requeues += 1;
                    requeue = true;
                }
            }
            if requeue {
                self.retry_or_fail(
                    id,
                    task,
                    MatrixError::Runtime {
                        reason: format!("worker {w} stalled past {bound:?}"),
                    },
                );
            }
            if drained_cancel {
                self.cancel_finish(id);
            }
        }
    }

    /// Resolve a cancelled DAG job whose in-flight work has drained.
    fn cancel_finish(&mut self, id: JobId) {
        let Some(job) = self.jobs.remove(&id) else {
            return;
        };
        self.gate.release();
        let _ = job.meta.result_tx.send(Err(ServiceError::Cancelled));
        let mut m = self.metrics.lock().unwrap();
        m.jobs_failed += 1;
        m.lifecycle.jobs_cancelled += 1;
    }

    fn handle_cancel(&mut self, id: JobId) {
        // Still waiting in the small-job queue: resolve immediately.
        if let Some(pos) = self.smalls.iter().position(|s| s.meta.id == id) {
            let small = self.smalls.remove(pos).expect("position just found");
            self.cancel_meta(small.meta);
            return;
        }
        // Queued inside a pending (undispatched) batch: pull the unit out.
        let found = self.batches.iter().enumerate().find_map(|(bi, b)| {
            b.units
                .iter()
                .position(|u| u.meta.id == id)
                .map(|ui| (bi, ui))
        });
        if let Some((bi, ui)) = found {
            let unit = self.batches[bi].units.remove(ui);
            if self.batches[bi].units.is_empty() {
                self.batches.remove(bi);
            }
            self.cancel_meta(unit.meta);
            return;
        }
        // DAG-path job. If its graph already completed, completion wins
        // (the finalize/epilogue path delivers the normal result); a
        // batch already on a worker likewise runs to delivery.
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        if job.payload.is_none() || job.tracker.all_done() {
            return;
        }
        job.cancelled = true;
        // Forget queued work; in-flight attempts drain at the fence.
        if job.in_flight == 0 {
            self.cancel_finish(id);
        }
    }

    /// Try to reclaim unique ownership of completed DAGs and move them to
    /// their epilogue (or completion). Workers drop their state handles
    /// before reporting, so this almost always succeeds on the first try;
    /// a straggler clone (late result from a retired worker) just defers
    /// the job to the next loop iteration.
    fn run_finalize(&mut self) {
        enum Next<T: Scalar> {
            Defer,
            Complete(Box<JobOutput<T>>, RunReport),
            Epilogue(Box<EpilogueUnit<T>>, RunReport),
        }
        let pending = std::mem::take(&mut self.finalize_pending);
        for id in pending {
            let policy = self.cfg.policy;
            let next = {
                let Some(job) = self.jobs.get_mut(&id) else {
                    continue;
                };
                let Some(arc) = job.shared.take() else {
                    continue;
                };
                match Arc::try_unwrap(arc) {
                    Err(arc) => {
                        job.shared = Some(arc);
                        Next::Defer
                    }
                    Ok(sh) => {
                        let state = sh.into_state();
                        let counters = HotPathCounters {
                            cow_clones: state.cow_clones(),
                            ..HotPathCounters::default()
                        };
                        let report = RunReport {
                            tasks_per_worker: job.tasks_per_worker.clone(),
                            elapsed: job.started.map(|s| s.elapsed()).unwrap_or_default(),
                            stage_wait: job.stage_wait,
                            commit_wait: job.commit_wait,
                            max_ready_depth: job.ready.max_depth(),
                            policy,
                            retries: job.retries,
                            requeues: job.requeues,
                            worker_deaths: job.worker_deaths,
                            drift_reweights: job.drift_reweights,
                            trace: None,
                            counters,
                        };
                        let payload = job.payload.take().expect("payload taken once");
                        match payload {
                            Payload::Factor => Next::Complete(
                                Box::new(JobOutput::Factored(FactoredJob {
                                    state,
                                    graph: job.graph.as_ref().clone(),
                                    rows: job.rows,
                                    cols: job.cols,
                                })),
                                report,
                            ),
                            payload => Next::Epilogue(
                                Box::new(EpilogueUnit {
                                    job: id,
                                    state,
                                    graph: Arc::clone(&job.graph),
                                    rows: job.rows,
                                    cols: job.cols,
                                    payload,
                                }),
                                report,
                            ),
                        }
                    }
                }
            };
            match next {
                Next::Defer => self.finalize_pending.push(id),
                Next::Complete(output, report) => self.complete_job(id, *output, report, false),
                Next::Epilogue(unit, report) => {
                    if let Some(job) = self.jobs.get_mut(&id) {
                        job.report = Some(report);
                    }
                    self.epi_queue.push_back(Work::Epilogue(unit));
                }
            }
        }
    }

    fn record_done(&mut self, class: PriorityClass, queue_wait: Duration, latency: Duration) {
        let mut m = self.metrics.lock().unwrap();
        m.jobs_completed += 1;
        m.queue_wait.record_ns(queue_wait.as_nanos() as u64);
        m.latency.record_ns(latency.as_nanos() as u64);
        m.class_latency[class.index()].record_ns(latency.as_nanos() as u64);
    }

    /// Deliver a success for a DAG-path job and retire its state.
    fn complete_job(&mut self, id: JobId, output: JobOutput<T>, report: RunReport, batched: bool) {
        let Some(job) = self.jobs.remove(&id) else {
            return;
        };
        let queue_wait = job
            .started
            .map(|s| s.duration_since(job.meta.submitted))
            .unwrap_or_default();
        let latency = job.meta.submitted.elapsed();
        let result = JobResult {
            job: id,
            class: job.meta.class,
            output,
            report,
            queue_wait,
            latency,
            dispatch_delay_tasks: job.meta.dispatch_delay_tasks,
            backlog_at_submit: job.meta.backlog_at_submit,
            batched,
            task_latency: job.task_latency,
            class_compute_us: job.class_compute_us,
            class_tasks: job.class_tasks,
        };
        if job.drift_reweights > 0 {
            self.metrics.lock().unwrap().drift_reweights += job.drift_reweights;
        }
        // Release before resolving the handle so a waiter that sees the
        // result can immediately reuse the admission slot.
        self.gate.release();
        let _ = job.meta.result_tx.send(Ok(result));
        self.record_done(job.meta.class, queue_wait, latency);
    }

    /// Deliver a failure for a DAG-path job and drop its remaining state.
    fn fail_job(&mut self, id: JobId, err: ServiceError) {
        let Some(job) = self.jobs.remove(&id) else {
            return;
        };
        self.gate.release();
        let _ = job.meta.result_tx.send(Err(err));
        self.metrics.lock().unwrap().jobs_failed += 1;
    }

    /// Charge a failed attempt to the job's budget: park a retry or fail
    /// the job once the budget is spent. Only this job is affected.
    fn retry_or_fail(&mut self, id: JobId, task: TaskId, last: MatrixError) {
        let ftc = self.cfg.fault_tolerance;
        let attempts = match self.jobs.get(&id) {
            Some(job) => job.attempts[task],
            None => return,
        };
        if attempts >= ftc.max_attempts {
            self.fail_job(
                id,
                ServiceError::Runtime(RuntimeError::RetriesExhausted {
                    task,
                    attempts,
                    last: last.to_string(),
                }),
            );
            return;
        }
        if let Some(job) = self.jobs.get_mut(&id) {
            job.retries += 1;
        }
        let wake = Instant::now() + ftc.backoff(attempts);
        self.parked.push(Reverse((wake, id, task)));
    }

    fn handle_task_done(&mut self, done: TaskDone<T>) {
        let TaskDone {
            job: id,
            task,
            worker,
            outcome,
        } = done;
        // Is this the result we dispatched to this worker slot? A late
        // report from a watchdog-retired thread fails this check: its
        // slot was already respawned, so it must not touch slot state
        // (respawning again would kill the healthy replacement) or
        // in-flight accounting (the watchdog already charged it). A
        // stale `Done` still gets a shot at the commit fence below —
        // first result wins, whoever produced it.
        let expected = matches!(
            self.in_flight_of[worker],
            Some(InFlight::Task { job: j, task: t, .. }) if j == id && t == task
        );
        if expected {
            self.in_flight_of[worker] = None;
            if !matches!(outcome, TaskOutcome::Panicked(_)) {
                self.idle.push(worker);
            }
        }
        let mut respawn_needed = false;
        let mut retry_err: Option<MatrixError> = None;
        let mut poisoned: Option<(usize, usize)> = None;
        let mut drained_cancel = false;
        {
            let Some(job) = self.jobs.get_mut(&id) else {
                // Job already failed and was removed; drop the late result.
                if expected && matches!(outcome, TaskOutcome::Panicked(_)) {
                    self.respawn(worker);
                }
                return;
            };
            if expected {
                job.in_flight = job.in_flight.saturating_sub(1);
            }
            match outcome {
                TaskOutcome::Done {
                    completed,
                    stage_wait,
                    compute_ns,
                } => {
                    job.stage_wait += stage_wait;
                    job.task_latency.record_ns(compute_ns);
                    // Commit fence: first result wins, duplicates from
                    // retried attempts are dropped. A cancelled job stops
                    // committing here so its DAG drains instead of
                    // advancing (the attempt's staging was non-destructive,
                    // so dropping the result leaves clean state).
                    if !job.committed[task] && !job.cancelled {
                        // Poison fence: scan panel-factor output before it
                        // becomes an input of downstream tasks.
                        if is_panel_factor(job.graph.task(task)) {
                            poisoned = completed.first_non_finite();
                        }
                        if poisoned.is_none() {
                            let t0 = Instant::now();
                            job.shared
                                .as_ref()
                                .expect("state present while tasks run")
                                .commit(*completed);
                            job.commit_wait += t0.elapsed();
                            job.committed[task] = true;
                            job.tasks_per_worker[worker] += 1;
                            let kind = job.graph.task(task);
                            let slot = class_slot(kind.class());
                            let compute_us = compute_ns as f64 / 1e3;
                            job.class_compute_us[slot] += compute_us;
                            job.class_tasks[slot] += 1;
                            if let Some((detector, base)) = job.drift.as_mut() {
                                detector.record(slot, compute_us);
                                // Panel boundary: first commit of a later
                                // panel closes the previous panel's window.
                                if kind.panel() > job.drift_panel {
                                    job.drift_panel = kind.panel();
                                    if let Some(ratios) = detector.check() {
                                        let scaled = base.scaled(ratios);
                                        let b = job.b;
                                        job.ready.reprioritize(bottom_levels(&job.graph, |k| {
                                            scaled.cost_us(k, b)
                                        }));
                                        job.drift_reweights += 1;
                                    }
                                }
                            }
                            let graph = Arc::clone(&job.graph);
                            for s in job.tracker.complete(&graph, task) {
                                job.ready.push(s);
                            }
                            if job.tracker.all_done() {
                                self.finalize_pending.push(id);
                            }
                        }
                    }
                }
                TaskOutcome::Failed(e) => {
                    if !job.cancelled {
                        retry_err = Some(e);
                    }
                }
                TaskOutcome::Panicked(message) => {
                    if expected {
                        job.worker_deaths += 1;
                        respawn_needed = true;
                        if !job.cancelled {
                            job.requeues += 1;
                            retry_err = Some(MatrixError::Runtime {
                                reason: format!("worker {worker} panicked: {message}"),
                            });
                        }
                    }
                }
            }
            if job.cancelled && job.in_flight == 0 && !job.tracker.all_done() {
                drained_cancel = true;
            }
        }
        if respawn_needed {
            self.respawn(worker);
        }
        if let Some(tile) = poisoned {
            // Fail only the victim: its state is dropped before the NaN
            // was ever committed, so no other tile (or job) saw it.
            self.metrics.lock().unwrap().lifecycle.poison_detected += 1;
            self.fail_job(
                id,
                ServiceError::NumericalBreakdown {
                    task: Some(task),
                    tile,
                },
            );
            return;
        }
        if let Some(e) = retry_err {
            self.retry_or_fail(id, task, e);
        }
        if drained_cancel {
            self.cancel_finish(id);
        }
    }

    fn handle_batch_done(&mut self, done: BatchDone<T>) {
        let BatchDone { worker, items } = done;
        self.in_flight_of[worker] = None;
        self.idle.push(worker);
        self.batch_in_flight -= 1;
        for item in items {
            let BatchItem {
                meta,
                result,
                elapsed,
                tasks,
            } = item;
            match result {
                Ok((output, task_latency)) => {
                    let mut tasks_per_worker = vec![0u64; self.workers];
                    tasks_per_worker[worker] = tasks;
                    let counters = HotPathCounters {
                        cow_clones: output.factor().state.cow_clones(),
                        ..HotPathCounters::default()
                    };
                    let report = RunReport {
                        tasks_per_worker,
                        elapsed,
                        stage_wait: Duration::ZERO,
                        commit_wait: Duration::ZERO,
                        max_ready_depth: 0,
                        policy: self.cfg.policy,
                        retries: 0,
                        requeues: 0,
                        worker_deaths: 0,
                        drift_reweights: 0,
                        trace: None,
                        counters,
                    };
                    let latency = meta.submitted.elapsed();
                    let result = JobResult {
                        job: meta.id,
                        class: meta.class,
                        output,
                        report,
                        queue_wait: meta.queue_wait,
                        latency,
                        dispatch_delay_tasks: meta.dispatch_delay_tasks,
                        backlog_at_submit: meta.backlog_at_submit,
                        batched: true,
                        task_latency,
                        class_compute_us: [0.0; 3],
                        class_tasks: [0; 3],
                    };
                    self.gate.release();
                    let _ = meta.result_tx.send(Ok(result));
                    self.record_done(meta.class, meta.queue_wait, latency);
                }
                Err(f) => {
                    let err = match f {
                        UnitFailure::Numeric(e) => ServiceError::Numeric(e),
                        UnitFailure::Panicked(message) => {
                            ServiceError::Runtime(RuntimeError::TaskPanicked {
                                task: 0,
                                worker,
                                message,
                            })
                        }
                    };
                    self.gate.release();
                    let _ = meta.result_tx.send(Err(err));
                    self.metrics.lock().unwrap().jobs_failed += 1;
                }
            }
        }
    }

    fn handle_epilogue_done(&mut self, done: EpilogueDone<T>) {
        let EpilogueDone {
            job: id,
            worker,
            result,
        } = done;
        self.in_flight_of[worker] = None;
        self.idle.push(worker);
        match result {
            Ok(output) => {
                let report = self
                    .jobs
                    .get_mut(&id)
                    .and_then(|j| j.report.take())
                    .expect("epilogue job has a stashed report");
                self.complete_job(id, output, report, false);
            }
            Err(f) => {
                let err = match f {
                    UnitFailure::Numeric(e) => ServiceError::Numeric(e),
                    UnitFailure::Panicked(message) => {
                        ServiceError::Runtime(RuntimeError::TaskPanicked {
                            task: 0,
                            worker,
                            message,
                        })
                    }
                };
                self.fail_job(id, err);
            }
        }
    }

    /// Pick the backlogged job with the smallest virtual time. Cancelled
    /// jobs are skipped: their remaining ready tasks are abandoned while
    /// in-flight attempts drain.
    fn pick_wfq_job(&self) -> Option<(f64, JobId)> {
        self.jobs
            .iter()
            .filter(|(_, j)| !j.ready.is_empty() && !j.cancelled)
            .map(|(&id, j)| (j.vtime, id))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    fn pick_batch(&self) -> Option<(f64, usize)> {
        self.batches
            .iter()
            .enumerate()
            .map(|(i, b)| (b.vtime, i))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
    }

    /// Hand work to idle workers: epilogues first (short, completes an
    /// admitted job), then the weighted-fair choice between regular job
    /// tasks and pending small-job batches.
    fn dispatch(&mut self) {
        while let Some(&w) = self.idle.last() {
            if let Some(work) = self.epi_queue.pop_front() {
                if let Some(back) = self.try_send(w, work, InFlight::Other) {
                    self.epi_queue.push_front(back);
                }
                continue;
            }
            let best_job = self.pick_wfq_job();
            let mut best_batch = self.pick_batch();
            // Nothing regular to run but accumulated smalls: flush a
            // partial batch rather than letting the worker idle.
            if best_job.is_none() && best_batch.is_none() && !self.smalls.is_empty() {
                self.flush_smalls();
                best_batch = self.pick_batch();
            }
            match (best_job, best_batch) {
                (None, None) => break,
                (Some((jv, id)), Some((bv, bi))) => {
                    if bv <= jv {
                        self.dispatch_batch(w, bi);
                    } else {
                        self.dispatch_task(w, id);
                    }
                }
                (Some((_, id)), None) => self.dispatch_task(w, id),
                (None, Some((_, bi))) => self.dispatch_batch(w, bi),
            }
        }
        let depth: usize =
            self.jobs.values().map(|j| j.ready.len()).sum::<usize>() + self.smalls.len();
        let mut m = self.metrics.lock().unwrap();
        m.max_ready_depth = m.max_ready_depth.max(depth);
    }

    /// Send a unit to worker `w`. On success the worker leaves the idle
    /// stack; on a dead dispatch channel (a just-panicked worker whose
    /// report is still queued) the slot is respawned and the unit handed
    /// back to the caller to re-queue.
    fn try_send(&mut self, w: usize, work: Work<T>, marker: InFlight) -> Option<Work<T>> {
        match self.slots[w].tx.send(work) {
            Ok(()) => {
                self.idle.pop();
                self.in_flight_of[w] = Some(marker);
                None
            }
            Err(mpsc::SendError(work)) => {
                self.respawn(w);
                Some(work)
            }
        }
    }

    fn dispatch_task(&mut self, w: usize, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        // Skip entries already committed via a racing retry.
        let task = loop {
            match job.ready.pop() {
                Some(t) if job.committed[t] => continue,
                Some(t) => break t,
                None => return,
            }
        };
        if job.started.is_none() {
            job.started = Some(Instant::now());
            job.meta.queue_wait = job.started.unwrap().duration_since(job.meta.submitted);
            job.meta.dispatch_delay_tasks = self.dispatch_count - job.meta.submit_dispatch_count;
        }
        job.attempts[task] += 1;
        let kind = job.graph.task(task);
        let work = Work::Task {
            job: id,
            task,
            kind,
            // Worker-facing attempt numbers are 0-based, matching the
            // pool path and `ScriptedFaults`' `attempt < count` window.
            attempt: job.attempts[task] - 1,
            shared: Arc::clone(job.shared.as_ref().expect("state present while tasks run")),
            injector: job.injector.clone(),
        };
        job.in_flight += 1;
        self.dispatch_count += 1;
        self.vclock = job.vtime;
        job.vtime += task_cost(job.cost, job.b, kind) / job.weight;
        self.metrics.lock().unwrap().tasks_dispatched += 1;
        let marker = InFlight::Task {
            job: id,
            task,
            since: Instant::now(),
        };
        if self.try_send(w, work, marker).is_some() {
            // Dead channel: undo the dispatch so the retry path stays
            // honest, and put the task back in the ready set.
            if let Some(job) = self.jobs.get_mut(&id) {
                job.attempts[task] -= 1;
                job.in_flight -= 1;
                job.requeues += 1;
                job.ready.push(task);
            }
        }
    }

    fn dispatch_batch(&mut self, w: usize, index: usize) {
        let Some(mut batch) = self.batches.remove(index) else {
            return;
        };
        self.vclock = batch.vtime;
        let now = Instant::now();
        let mut units = Vec::with_capacity(batch.units.len());
        for mut small in batch.units.drain(..) {
            small.meta.queue_wait = now.duration_since(small.meta.submitted);
            small.meta.dispatch_delay_tasks =
                self.dispatch_count - small.meta.submit_dispatch_count;
            self.dispatch_count += 1;
            units.push(BatchUnit {
                meta: small.meta,
                state: small.state,
                graph: small.graph,
                rows: small.rows,
                cols: small.cols,
                payload: small.payload,
            });
        }
        let count = units.len() as u64;
        match self.try_send(w, Work::Batch(units), InFlight::Other) {
            None => {
                let mut m = self.metrics.lock().unwrap();
                m.batches += 1;
                m.jobs_batched += count;
                m.tasks_dispatched += count;
                drop(m);
                self.batch_in_flight += 1;
            }
            Some(Work::Batch(units)) => {
                // Dead channel: re-queue the batch untouched; the metas
                // are restamped on the next dispatch.
                let vtime = batch.vtime;
                let units = units
                    .into_iter()
                    .map(|u| SmallJob {
                        meta: u.meta,
                        state: u.state,
                        graph: u.graph,
                        rows: u.rows,
                        cols: u.cols,
                        payload: u.payload,
                        vtime,
                    })
                    .collect();
                self.batches.push_back(PendingBatch { units, vtime });
            }
            Some(_) => unreachable!("batch send returns batch work"),
        }
    }

    fn is_drained(&self) -> bool {
        self.jobs.is_empty()
            && self.smalls.is_empty()
            && self.batches.is_empty()
            && self.epi_queue.is_empty()
            && self.batch_in_flight == 0
    }

    fn handle(&mut self, msg: Msg<T>) {
        match msg {
            Msg::Submit(nj) => self.handle_submit(*nj),
            Msg::TaskDone(d) => self.handle_task_done(*d),
            Msg::BatchDone(d) => self.handle_batch_done(d),
            Msg::EpilogueDone(d) => self.handle_epilogue_done(*d),
            Msg::Cancel(id) => self.handle_cancel(id),
            Msg::Drain(ack) => {
                self.draining = true;
                self.drain_ack = Some(ack);
            }
        }
    }

    fn run(mut self) {
        loop {
            self.wake_parked();
            self.sweep_shed();
            self.sweep_watchdog();
            self.run_finalize();
            self.dispatch();
            if self.draining && self.is_drained() {
                break;
            }
            // Pick a wait bound: due parked retries, queued-job
            // deadlines, watchdog expiries, and deferred finalizations
            // all need the loop to spin again without a new message
            // arriving.
            let mut timeout: Option<Duration> = None;
            if let Some(Reverse((deadline, _, _))) = self.parked.peek() {
                let d = deadline.saturating_duration_since(Instant::now());
                timeout = Some(timeout.map_or(d, |t| t.min(d)));
            }
            if let Some(shed_at) = self.earliest_queued_deadline() {
                let d = shed_at.saturating_duration_since(Instant::now());
                timeout = Some(timeout.map_or(d, |t| t.min(d)));
            }
            if let Some(expiry) = self.earliest_stall_expiry() {
                let d = expiry.saturating_duration_since(Instant::now());
                timeout = Some(timeout.map_or(d, |t| t.min(d)));
            }
            if !self.finalize_pending.is_empty() {
                let d = Duration::from_millis(1);
                timeout = Some(timeout.map_or(d, |t| t.min(d)));
            }
            let first = match timeout {
                Some(d) => match self.rx.recv_timeout(d) {
                    Ok(m) => Some(m),
                    Err(RecvTimeoutError::Timeout) => None,
                    Err(RecvTimeoutError::Disconnected) => break,
                },
                None => match self.rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };
            if let Some(m) = first {
                self.handle(m);
                while let Ok(m) = self.rx.try_recv() {
                    self.handle(m);
                }
            }
        }
        if let Some(ack) = self.drain_ack.take() {
            let _ = ack.send(());
        }
        // Close dispatch channels so every worker's recv loop ends, then
        // join current and retired threads.
        let slots = std::mem::take(&mut self.slots);
        for slot in slots {
            drop(slot.tx);
            if let Some(h) = slot.handle {
                let _ = h.join();
            }
        }
        for h in std::mem::take(&mut self.graveyard) {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// service handle
// ---------------------------------------------------------------------------

/// A resident multi-matrix QR service: one long-lived worker pool serving
/// a stream of factor / solve / apply jobs. See the module docs for the
/// scheduling and recovery model.
///
/// ```
/// use tileqr_runtime::service::{JobOutput, JobSpec, QrService, ServiceConfig};
/// use tileqr_matrix::gen::random_matrix;
///
/// let service = QrService::<f64>::start(ServiceConfig {
///     workers: 2,
///     ..ServiceConfig::default()
/// });
/// let a = random_matrix::<f64>(32, 32, 7);
/// let handle = service.submit(JobSpec::factor(a).tile_size(8)).unwrap();
/// let result = handle.wait().unwrap();
/// assert!(matches!(result.output, JobOutput::Factored(_)));
/// service.shutdown();
/// ```
pub struct QrService<T: Scalar> {
    tx: Mutex<Option<mpsc::Sender<Msg<T>>>>,
    gate: Arc<Gate>,
    metrics: Arc<Mutex<ServiceStats>>,
    manager: Mutex<Option<JoinHandle<()>>>,
    next_job: AtomicU64,
    selector: Option<Arc<TreeSelector>>,
    default_cost: CostModel,
}

/// Per-job elimination-tree planner: maps a job's tile geometry and tile
/// size `(mt, nt, b)` to the tree its DAG should use. Consulted only for
/// jobs submitted with [`TreePolicy::Auto`]; typically produced from a
/// calibrated device profile by `tileqr_sched::select::tree_selector`.
pub type TreeSelector = dyn Fn(usize, usize, usize) -> EliminationTree + Send + Sync;

impl<T: Scalar> QrService<T> {
    /// Spawn the manager and the resident worker pool.
    pub fn start(config: ServiceConfig) -> Self {
        Self::start_inner(config, None)
    }

    /// [`QrService::start`] with a geometry-aware tree planner: every job
    /// submitted with [`TreePolicy::Auto`] has its elimination tree
    /// chosen by `selector` at admission time (on the submitting thread —
    /// the manager loop never pays for planning). Jobs with a fixed
    /// policy bypass the selector entirely.
    pub fn start_with_tree_selector(config: ServiceConfig, selector: Arc<TreeSelector>) -> Self {
        Self::start_inner(config, Some(selector))
    }

    fn start_inner(config: ServiceConfig, selector: Option<Arc<TreeSelector>>) -> Self {
        let workers = config.effective_workers().max(1);
        let default_cost = config.cost;
        let gate = Arc::new(Gate::new(config.max_in_flight));
        let metrics = Arc::new(Mutex::new(ServiceStats::default()));
        let (tx, rx) = mpsc::channel::<Msg<T>>();
        let mgr_tx = tx.clone();
        let mgr_gate = Arc::clone(&gate);
        let mgr_metrics = Arc::clone(&metrics);
        let manager = std::thread::Builder::new()
            .name("qr-service-manager".into())
            .spawn(move || {
                Manager::new(config, workers, rx, mgr_tx, mgr_gate, mgr_metrics).run();
            })
            .expect("spawn service manager");
        QrService {
            tx: Mutex::new(Some(tx)),
            gate,
            metrics,
            manager: Mutex::new(Some(manager)),
            next_job: AtomicU64::new(0),
            selector,
            default_cost,
        }
    }

    /// Submit a job, blocking while the admission bound is reached
    /// (backpressure). Returns a handle redeemable for the result.
    pub fn submit(&self, spec: JobSpec<T>) -> Result<JobHandle<T>, ServiceError> {
        self.submit_inner(spec, true)
    }

    /// Submit without blocking: fails with [`ServiceError::Saturated`]
    /// when the admission bound is reached.
    pub fn try_submit(&self, spec: JobSpec<T>) -> Result<JobHandle<T>, ServiceError> {
        self.submit_inner(spec, false)
    }

    fn submit_inner(&self, spec: JobSpec<T>, block: bool) -> Result<JobHandle<T>, ServiceError> {
        // Validate and tile on the caller's thread so the manager loop
        // stays lean; spec errors cost no admission slot.
        let (rows, cols) = (spec.a.rows(), spec.a.cols());
        if rows < cols {
            return Err(ServiceError::Numeric(MatrixError::DimensionMismatch {
                op: "service QR (rows < cols)",
                lhs: (rows, cols),
                rhs: (rows, cols),
            }));
        }
        match &spec.payload {
            Payload::Solve { rhs } if rhs.len() != rows => {
                return Err(ServiceError::Numeric(MatrixError::DimensionMismatch {
                    op: "service solve (rhs length)",
                    lhs: (rows, 1),
                    rhs: (rhs.len(), 1),
                }));
            }
            Payload::Apply { c, .. } if c.rows() != rows => {
                return Err(ServiceError::Numeric(MatrixError::DimensionMismatch {
                    op: "service apply (row count)",
                    lhs: (rows, 0),
                    rhs: c.dims(),
                }));
            }
            _ => {}
        }
        let tiled =
            TiledMatrix::from_matrix(&spec.a, spec.tile_size).map_err(ServiceError::Numeric)?;
        let b = tiled.tile_size();
        // Poison containment starts at the front door: a NaN/Inf input
        // would corrupt every downstream tile, so reject it here — on the
        // caller's thread, before it costs an admission slot.
        if let Some((i, j)) = spec.a.first_non_finite() {
            return Err(ServiceError::NumericalBreakdown {
                task: None,
                tile: (i / b, j / b),
            });
        }
        let (mt, nt) = (tiled.tile_rows(), tiled.tile_cols());
        let tree = match spec.tree {
            TreePolicy::Fixed(tree) => tree,
            TreePolicy::Auto => match &self.selector {
                Some(plan) => plan(mt, nt, b),
                None => EliminationTree::default_for(mt, nt),
            },
        };
        let graph = Arc::new(TaskGraph::build_tree(mt, nt, tree));
        let state = match spec.inner_block {
            Some(ib) => FactorState::with_inner_block(tiled, ib),
            None => FactorState::new(tiled),
        };
        self.gate.acquire(block)?;
        let id = self.next_job.fetch_add(1, Ordering::SeqCst) + 1;
        let (result_tx, result_rx) = mpsc::channel();
        let msg = Msg::Submit(Box::new(NewJob {
            id,
            state,
            graph,
            rows,
            cols,
            b,
            payload: spec.payload,
            class: spec.priority,
            cost: spec.cost.unwrap_or(self.default_cost),
            tuning: spec.tuning,
            injector: spec.injector,
            submitted: Instant::now(),
            deadline: spec.deadline,
            result_tx,
        }));
        let guard = self.tx.lock().unwrap();
        match guard.as_ref() {
            Some(tx) if tx.send(msg).is_ok() => Ok(JobHandle {
                id,
                rx: result_rx,
                ctl: tx.clone(),
            }),
            _ => {
                drop(guard);
                self.gate.release();
                Err(ServiceError::ShuttingDown)
            }
        }
    }

    /// Snapshot the service-wide counters and histograms.
    pub fn stats(&self) -> ServiceStats {
        self.metrics.lock().unwrap().clone()
    }

    /// Stop admission, drain every queued and in-flight job to its
    /// completion channel (zero lost jobs), join all threads, and return
    /// the final stats.
    pub fn shutdown(self) -> ServiceStats {
        self.shutdown_inner();
        self.metrics.lock().unwrap().clone()
    }

    fn shutdown_inner(&self) {
        self.gate.close();
        let tx_opt = self.tx.lock().unwrap().take();
        if let Some(tx) = tx_opt {
            let (ack_tx, ack_rx) = mpsc::channel();
            if tx.send(Msg::Drain(ack_tx)).is_ok() {
                let _ = ack_rx.recv();
            }
        }
        if let Some(h) = self.manager.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl<T: Scalar> Drop for QrService<T> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tileqr_matrix::gen::random_matrix;

    fn sequential_tiles(a: &Matrix<f64>, b: usize, order: EliminationOrder) -> Matrix<f64> {
        let tiled = TiledMatrix::from_matrix(a, b).unwrap();
        let g = TaskGraph::build(tiled.tile_rows(), tiled.tile_cols(), order);
        let mut st = FactorState::new(tiled);
        st.run_all(&g).unwrap();
        st.tiles().to_matrix()
    }

    #[test]
    fn single_job_matches_sequential() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let a = random_matrix::<f64>(24, 24, 5);
        let h = service
            .submit(JobSpec::factor(a.clone()).tile_size(8))
            .unwrap();
        let r = h.wait().unwrap();
        let JobOutput::Factored(f) = r.output else {
            panic!("expected factored output")
        };
        assert_eq!(
            f.state.tiles().to_matrix(),
            sequential_tiles(&a, 8, EliminationOrder::FlatTs)
        );
        assert_eq!(r.report.total_tasks(), f.graph.len() as u64);
        service.shutdown();
    }

    #[test]
    fn concurrent_jobs_all_complete_bit_identical() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        });
        let mut handles = Vec::new();
        let mut inputs = Vec::new();
        for i in 0..8u64 {
            let n = 16 + 8 * (i as usize % 3);
            let a = random_matrix::<f64>(n, n, 100 + i);
            inputs.push(a.clone());
            handles.push(service.submit(JobSpec::factor(a).tile_size(8)).unwrap());
        }
        for (h, a) in handles.into_iter().zip(&inputs) {
            let r = h.wait().unwrap();
            assert_eq!(
                r.output.factor().state.tiles().to_matrix(),
                sequential_tiles(a, 8, EliminationOrder::FlatTs)
            );
        }
        let stats = service.shutdown();
        assert_eq!(stats.jobs_completed, 8);
        assert_eq!(stats.jobs_failed, 0);
    }

    #[test]
    fn auto_policy_routes_through_installed_selector() {
        use std::sync::atomic::AtomicUsize;
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        let service = QrService::<f64>::start_with_tree_selector(
            ServiceConfig {
                workers: 2,
                ..ServiceConfig::default()
            },
            Arc::new(move |mt, nt, b| {
                seen.fetch_add(1, Ordering::SeqCst);
                assert_eq!((mt, nt, b), (6, 6, 8));
                EliminationTree::Greedy
            }),
        );
        let a = random_matrix::<f64>(48, 48, 31);
        // Auto consults the selector; a fixed policy must bypass it.
        let auto = service
            .submit(
                JobSpec::factor(a.clone())
                    .tile_size(8)
                    .tree(TreePolicy::Auto),
            )
            .unwrap();
        let fixed = service
            .submit(
                JobSpec::factor(a)
                    .tile_size(8)
                    .tree(TreePolicy::Fixed(EliminationTree::Flat)),
            )
            .unwrap();
        let ga = auto.wait().unwrap().output.factor().graph.tree();
        let gf = fixed.wait().unwrap().output.factor().graph.tree();
        assert_eq!(ga, EliminationTree::Greedy);
        assert_eq!(gf, EliminationTree::Flat);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        service.shutdown();
    }

    #[test]
    fn auto_policy_without_selector_uses_geometry_heuristic() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        // 64x8 at b=8 -> 8x1 grid: the heuristic picks the TSQR tree.
        let a = random_matrix::<f64>(64, 8, 32);
        let h = service
            .submit(JobSpec::factor(a).tile_size(8).tree(TreePolicy::Auto))
            .unwrap();
        let tree = h.wait().unwrap().output.factor().graph.tree();
        assert_eq!(tree, EliminationTree::default_for(8, 1));
        assert!(matches!(tree, EliminationTree::Tsqr(_)));
        service.shutdown();
    }

    #[test]
    fn solve_job_matches_direct_path() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let a = random_matrix::<f64>(24, 16, 9);
        let rhs: Vec<f64> = (0..24).map(|i| (i as f64).sin()).collect();
        let h = service
            .submit(JobSpec::solve(a.clone(), rhs.clone()).tile_size(8))
            .unwrap();
        let r = h.wait().unwrap();
        let JobOutput::Solved { x, .. } = r.output else {
            panic!("expected solution")
        };
        assert_eq!(x.len(), 16);
        assert!(x.iter().all(|v| v.is_finite()));
        service.shutdown();
    }

    #[test]
    fn try_submit_saturates_and_drains() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            max_in_flight: 2,
            ..ServiceConfig::default()
        });
        let mut handles = Vec::new();
        let mut rejected = 0;
        for i in 0..6u64 {
            let a = random_matrix::<f64>(32, 32, 300 + i);
            match service.try_submit(JobSpec::factor(a).tile_size(8)) {
                Ok(h) => handles.push(h),
                Err(ServiceError::Saturated {
                    in_flight,
                    max_in_flight,
                }) => {
                    assert_eq!(max_in_flight, 2);
                    assert_eq!(in_flight, 2);
                    rejected += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(rejected > 0, "admission bound never engaged");
        let stats = service.shutdown();
        // Shutdown drains: every accepted handle resolves.
        let accepted = handles.len() as u64;
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(stats.jobs_completed, accepted);
    }

    #[test]
    fn invalid_specs_rejected_synchronously() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let wide = random_matrix::<f64>(8, 16, 1);
        assert!(matches!(
            service.submit(JobSpec::factor(wide)),
            Err(ServiceError::Numeric(_))
        ));
        let a = random_matrix::<f64>(16, 16, 2);
        assert!(matches!(
            service.submit(JobSpec::solve(a, vec![0.0; 3])),
            Err(ServiceError::Numeric(_))
        ));
        service.shutdown();
    }

    #[test]
    fn shutdown_rejects_new_submissions() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let stats = service.shutdown();
        assert_eq!(stats.jobs_submitted, 0);
    }

    #[test]
    fn non_finite_input_rejected_at_submit() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        });
        let mut a = random_matrix::<f64>(24, 24, 11);
        a.set(17, 9, f64::NAN).unwrap();
        match service.submit(JobSpec::factor(a).tile_size(8)) {
            Err(ServiceError::NumericalBreakdown { task: None, tile }) => {
                assert_eq!(tile, (2, 1));
            }
            other => panic!("expected input breakdown, got {:?}", other.err()),
        }
        // The rejection happened caller-side: no admission slot burned.
        let stats = service.shutdown();
        assert_eq!(stats.jobs_submitted, 0);
        assert_eq!(stats.lifecycle.poison_detected, 0);
    }

    #[test]
    fn expired_deadline_sheds_queued_job() {
        // One worker pinned by a long-running job; a second job with a
        // zero deadline must be shed before it ever dispatches.
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            batch_max_tasks: 0,
            ..ServiceConfig::default()
        });
        let blocker = service
            .submit(JobSpec::factor(random_matrix::<f64>(64, 64, 21)).tile_size(8))
            .unwrap();
        let doomed = service
            .submit(
                JobSpec::factor(random_matrix::<f64>(32, 32, 22))
                    .tile_size(8)
                    .deadline(Duration::ZERO),
            )
            .unwrap();
        match doomed.wait() {
            Err(ServiceError::DeadlineExceeded { deadline, .. }) => {
                assert_eq!(deadline, Duration::ZERO);
            }
            other => panic!("expected shed, got ok={}", other.is_ok()),
        }
        blocker.wait().unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.lifecycle.jobs_shed, 1);
        assert_eq!(stats.jobs_completed, 1);
    }

    #[test]
    fn generous_deadline_does_not_shed() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let h = service
            .submit(
                JobSpec::factor(random_matrix::<f64>(24, 24, 23))
                    .tile_size(8)
                    .deadline(Duration::from_secs(300)),
            )
            .unwrap();
        h.wait().unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.lifecycle.jobs_shed, 0);
        assert_eq!(stats.jobs_completed, 1);
    }

    #[test]
    fn cancel_resolves_handle_and_releases_slot() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 1,
            max_in_flight: 1,
            batch_max_tasks: 0,
            ..ServiceConfig::default()
        });
        let h = service
            .submit(JobSpec::factor(random_matrix::<f64>(48, 48, 31)).tile_size(8))
            .unwrap();
        h.cancel();
        // Cancel races completion; either outcome is legal, but the
        // handle must resolve and the admission slot must come back —
        // proven by the next bounded submit succeeding.
        let cancelled = matches!(h.wait(), Err(ServiceError::Cancelled));
        let h2 = service
            .try_submit(JobSpec::factor(random_matrix::<f64>(16, 16, 32)).tile_size(8))
            .expect("slot released after cancel");
        h2.wait().unwrap();
        let stats = service.shutdown();
        assert_eq!(stats.lifecycle.jobs_cancelled, u64::from(cancelled));
    }

    #[test]
    fn wait_timeout_leaves_handle_redeemable() {
        let service = QrService::<f64>::start(ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        });
        let h = service
            .submit(JobSpec::factor(random_matrix::<f64>(48, 48, 41)).tile_size(8))
            .unwrap();
        // Poll with a zero timeout until the result lands: every timeout
        // leaves the handle intact, and the eventual result is normal.
        let mut result = None;
        for _ in 0..10_000 {
            match h.wait_timeout(Duration::from_millis(1)) {
                Ok(r) => {
                    result = Some(r);
                    break;
                }
                Err(WaitTimeout) => continue,
            }
        }
        result.expect("job finished within bound").unwrap();
        service.shutdown();
    }
}
